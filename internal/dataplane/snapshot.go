package dataplane

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"heimdall/internal/netmodel"
	"heimdall/internal/telemetry"
)

// Flow describes the traffic a trace or policy check exercises.
type Flow struct {
	Proto   netmodel.Protocol
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
}

// String renders the flow compactly, e.g. "tcp 10.1.0.5 -> 10.2.0.9:80".
func (f Flow) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", f.Proto, f.Src)
	if f.SrcPort != 0 {
		fmt.Fprintf(&b, ":%d", f.SrcPort)
	}
	fmt.Fprintf(&b, " -> %s", f.Dst)
	if f.DstPort != 0 {
		fmt.Fprintf(&b, ":%d", f.DstPort)
	}
	return b.String()
}

// Options tunes snapshot computation.
type Options struct {
	// FlowHashECMP selects among equal-cost paths by hashing the flow
	// 5-tuple (how real routers load-balance) instead of always taking
	// the first entry. Deterministic per flow either way.
	FlowHashECMP bool
	// Meter receives the snapshot's flow-cache hit/miss counters
	// (heimdall_dataplane_flowcache_{hits,misses}_total). Nil means no
	// instrumentation; FlowCacheStats works either way.
	Meter telemetry.Meter
}

// Snapshot is the computed forwarding state of one network configuration:
// L2 adjacency, per-device FIBs, and an address index. Snapshots are
// immutable; recompute one after changing the network. Immutability is
// what makes the per-snapshot flow cache sound: a memoized trace can
// never go stale within one snapshot's lifetime.
type Snapshot struct {
	net      *netmodel.Network
	adj      adjacency
	ribs     map[string][]FIBEntry
	fibs     map[string]*LPM
	sessions []bgpSession
	opts     Options
	// ospfRoutes and bgpRoutes are the raw per-device protocol routes the
	// RIBs were built from, retained so Derive can rebuild a single
	// device's RIB (or rerun a single protocol pass) without recomputing
	// the rest.
	ospfRoutes map[string][]FIBEntry
	bgpRoutes  map[string][]FIBEntry
	// owner maps every up interface address to its endpoint.
	owner map[netip.Addr]netmodel.Endpoint
	// lsdb is the link-state database ospfRoutes was computed from,
	// retained so Derive can diff it against a mutated network's LSDB and
	// recompute SPF only for sources whose result can actually change.
	lsdb *ospfLSDB
	// flows memoizes Reach results (per snapshot, concurrency-safe).
	flows *flowCache
}

// Compute builds a snapshot of the network's forwarding behaviour with
// default options.
func Compute(n *netmodel.Network) *Snapshot { return ComputeWithOptions(n, Options{}) }

// ComputeWithOptions builds a snapshot with explicit options.
func ComputeWithOptions(n *netmodel.Network, opts Options) *Snapshot {
	adj := computeAdjacency(n)
	lsdb := buildLSDB(n, adj)
	ospfRoutes := lsdb.routes()
	bgpRoutes := computeBGP(n, adj)
	s := &Snapshot{
		net:        n,
		adj:        adj,
		sessions:   bgpSessions(n, adj),
		opts:       opts,
		ospfRoutes: ospfRoutes,
		bgpRoutes:  bgpRoutes,
		owner:      buildOwner(n),
		lsdb:       lsdb,
		flows:      newFlowCache(opts.Meter),
	}
	s.ribs, s.fibs = buildRIBs(n, n.DeviceNames(), adj, ospfRoutes, bgpRoutes)
	return s
}

// buildRIBs computes the RIB and FIB of every named device. Devices are
// independent given the shared (read-only) adjacency and protocol routes,
// so the builds fan out over a bounded pool; results land in
// index-addressed slots, making the maps identical to a serial build.
//
// Structurally identical devices share storage: generated topologies
// produce many byte-identical RIBs (every host behind one gateway, the
// symmetric members of a fat-tree pod), so RIBs are deduplicated by
// content before the FIB pass and duplicates alias one route slice and
// one LPM trie. Dedup is by hash bucket plus a full entry-by-entry
// equality check — a hash collision can cost a comparison, never a wrong
// share — and since snapshots are immutable the aliasing is invisible to
// every consumer.
func buildRIBs(n *netmodel.Network, devs []string, adj adjacency,
	ospfRoutes, bgpRoutes map[string][]FIBEntry) (map[string][]FIBEntry, map[string]*LPM) {

	ribSlots := make([][]FIBEntry, len(devs))
	fanOut(len(devs), func(i int) {
		ribSlots[i] = ribFor(n, devs[i], adj, ospfRoutes, bgpRoutes)
	})

	canon := make([]int, len(devs)) // device index -> representative index
	byHash := make(map[uint64][]int, len(devs))
	uniq := make([]int, 0, len(devs))
	for i := range ribSlots {
		h := ribHash(ribSlots[i])
		rep := -1
		for _, j := range byHash[h] {
			if fibSlicesEqual(ribSlots[j], ribSlots[i]) {
				rep = j
				break
			}
		}
		if rep < 0 {
			byHash[h] = append(byHash[h], i)
			canon[i] = i
			uniq = append(uniq, i)
			continue
		}
		canon[i] = rep
		ribSlots[i] = ribSlots[rep]
	}

	fibSlots := make([]*LPM, len(devs))
	fanOut(len(uniq), func(k int) {
		i := uniq[k]
		fibSlots[i] = fibFrom(ribSlots[i])
	})

	ribs := make(map[string][]FIBEntry, len(devs))
	fibs := make(map[string]*LPM, len(devs))
	for i, dev := range devs {
		ribs[dev] = ribSlots[canon[i]]
		fibs[dev] = fibSlots[canon[i]]
	}
	return ribs, fibs
}

// ribHash is an FNV-1a digest of a RIB's content, used to bucket devices
// for structural sharing. Collisions are resolved by full comparison.
func ribHash(rib []FIBEntry) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	mixInt := func(v int) {
		for s := 0; s < 64; s += 8 {
			mix(byte(v >> s))
		}
	}
	mixAddr := func(a netip.Addr) {
		if !a.IsValid() {
			mix(0xff)
			return
		}
		b := a.As16()
		for _, x := range b {
			mix(x)
		}
	}
	for i := range rib {
		e := &rib[i]
		mixAddr(e.Prefix.Addr())
		mix(byte(e.Prefix.Bits()))
		mix(byte(e.Proto))
		mixAddr(e.NextHop)
		mixInt(len(e.OutIf))
		for j := 0; j < len(e.OutIf); j++ {
			mix(e.OutIf[j])
		}
		mixInt(e.AD)
		mixInt(e.Metric)
	}
	return h
}

// fibFrom builds the longest-prefix-match table for one device's RIB. The
// RIB is sorted by prefix (ribFor's contract), so equal-prefix entries are
// contiguous: each run becomes one Insert, aliasing the RIB's backing array
// (both structures are immutable once the snapshot is built).
func fibFrom(rib []FIBEntry) *LPM {
	fib := &LPM{}
	for i := 0; i < len(rib); {
		j := i + 1
		for j < len(rib) && rib[j].Prefix == rib[i].Prefix {
			j++
		}
		fib.Insert(rib[i].Prefix, rib[i:j:j])
		i = j
	}
	return fib
}

// buildOwner indexes every L3 endpoint address to its owning endpoint.
func buildOwner(n *netmodel.Network) map[netip.Addr]netmodel.Endpoint {
	owner := make(map[netip.Addr]netmodel.Endpoint)
	for _, dev := range n.DeviceNames() {
		d := n.Devices[dev]
		for _, ifName := range d.InterfaceNames() {
			itf := d.Interfaces[ifName]
			if l3Endpoint(itf) {
				owner[itf.Addr.Addr()] = netmodel.Endpoint{Device: dev, Interface: ifName}
			}
		}
	}
	return owner
}

// RIB returns the device's routing table (best paths, sorted).
func (s *Snapshot) RIB(device string) []FIBEntry { return s.ribs[device] }

// Adjacent returns the L3 endpoints reachable at L2 from the endpoint.
func (s *Snapshot) Adjacent(ep netmodel.Endpoint) []netmodel.Endpoint { return s.adj[ep] }

// Disposition classifies the fate of a traced packet.
type Disposition int

const (
	// Delivered means the packet reached the device owning the
	// destination address.
	Delivered Disposition = iota
	// DropNoRoute means a device had no route to the destination.
	DropNoRoute
	// DropACL means an access list denied the packet.
	DropACL
	// DropARPFail means the next hop address resolved to no adjacent
	// device (down link, missing L2 path).
	DropARPFail
	// DropLoop means the packet exceeded the hop budget (routing loop).
	DropLoop
)

// String names the disposition.
func (d Disposition) String() string {
	switch d {
	case Delivered:
		return "delivered"
	case DropNoRoute:
		return "no-route"
	case DropACL:
		return "acl-deny"
	case DropARPFail:
		return "arp-fail"
	case DropLoop:
		return "loop"
	default:
		return fmt.Sprintf("Disposition(%d)", int(d))
	}
}

// Hop records the packet transiting one device.
type Hop struct {
	Device string
	InIf   string // empty at the source device
	OutIf  string // empty at the destination device
}

// Trace is the hop-by-hop fate of one flow.
type Trace struct {
	Flow        Flow
	Hops        []Hop
	Disposition Disposition
	// Where and Detail describe the drop point, e.g. the ACL that fired.
	Where  string
	Detail string
}

// Delivered reports whether the trace reached its destination.
func (t *Trace) Delivered() bool { return t.Disposition == Delivered }

// Path returns the device names visited, in order.
func (t *Trace) Path() []string {
	out := make([]string, len(t.Hops))
	for i, h := range t.Hops {
		out[i] = h.Device
	}
	return out
}

// Traverses reports whether the trace passes through the named device.
func (t *Trace) Traverses(device string) bool {
	for _, h := range t.Hops {
		if h.Device == device {
			return true
		}
	}
	return false
}

// String renders the trace for consoles and counterexamples.
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s", t.Flow, t.Disposition)
	if t.Where != "" {
		fmt.Fprintf(&b, " at %s", t.Where)
	}
	if t.Detail != "" {
		fmt.Fprintf(&b, " (%s)", t.Detail)
	}
	b.WriteString(" path=[")
	b.WriteString(strings.Join(t.Path(), " "))
	b.WriteString("]")
	return b.String()
}

const maxHops = 64

// flowHash is an FNV-1a hash of the flow 5-tuple, used for ECMP selection.
func flowHash(f Flow) uint32 {
	h := uint32(2166136261)
	mix := func(b byte) { h = (h ^ uint32(b)) * 16777619 }
	for _, b := range f.Src.As4() {
		mix(b)
	}
	for _, b := range f.Dst.As4() {
		mix(b)
	}
	mix(byte(f.Proto))
	mix(byte(f.SrcPort >> 8))
	mix(byte(f.SrcPort))
	mix(byte(f.DstPort >> 8))
	mix(byte(f.DstPort))
	return h
}

// TraceFrom forwards the flow starting at the named device and returns the
// hop-by-hop trace. The source device is usually the host owning f.Src, but
// any device can originate (used by the console's ping command).
func (s *Snapshot) TraceFrom(src string, f Flow) *Trace {
	t := &Trace{Flow: f, Hops: make([]Hop, 0, 8)}
	cur := src
	inIf := ""
	// Loop detection state: a plain slice scanned linearly beats a map
	// here — the hop budget is 64 and real paths are a handful of hops,
	// so the scan is a few pointer compares with no hashing or allocation.
	visited := make([]string, 0, 8)
	for hop := 0; hop < maxHops; hop++ {
		d := s.net.Devices[cur]
		if d == nil {
			t.Disposition = DropNoRoute
			t.Where = cur
			t.Detail = "unknown device"
			return t
		}

		// Ingress ACL.
		if inIf != "" {
			itf := d.Interface(inIf)
			if itf != nil && itf.ACLIn != "" {
				if acl := d.ACL(itf.ACLIn, false); acl != nil {
					if acl.Evaluate(f.Proto, f.Src, f.Dst, f.SrcPort, f.DstPort) == netmodel.Deny {
						t.Hops = append(t.Hops, Hop{Device: cur, InIf: inIf})
						t.Disposition = DropACL
						t.Where = cur
						t.Detail = fmt.Sprintf("acl %s in on %s", itf.ACLIn, inIf)
						return t
					}
				}
			}
		}

		// Delivered?
		if owner, ok := s.owner[f.Dst]; ok && owner.Device == cur {
			t.Hops = append(t.Hops, Hop{Device: cur, InIf: inIf})
			t.Disposition = Delivered
			return t
		}

		// Loop detection: forwarding depends only on the destination, so
		// revisiting a device means the packet is caught in a loop.
		for _, v := range visited {
			if v == cur {
				t.Hops = append(t.Hops, Hop{Device: cur, InIf: inIf})
				t.Disposition = DropLoop
				t.Where = cur
				return t
			}
		}
		visited = append(visited, cur)

		// Route lookup.
		entries, ok := s.fibs[cur].Lookup(f.Dst)
		if !ok || len(entries) == 0 {
			t.Hops = append(t.Hops, Hop{Device: cur, InIf: inIf})
			t.Disposition = DropNoRoute
			t.Where = cur
			return t
		}
		// ECMP selection: first entry by default (entries are sorted, so
		// deterministic), or a per-flow hash when enabled.
		e := entries[0]
		if s.opts.FlowHashECMP && len(entries) > 1 {
			e = entries[int(flowHash(f))%len(entries)]
		}

		// Egress ACL.
		outItf := d.Interface(e.OutIf)
		if outItf != nil && outItf.ACLOut != "" {
			if acl := d.ACL(outItf.ACLOut, false); acl != nil {
				if acl.Evaluate(f.Proto, f.Src, f.Dst, f.SrcPort, f.DstPort) == netmodel.Deny {
					t.Hops = append(t.Hops, Hop{Device: cur, InIf: inIf, OutIf: e.OutIf})
					t.Disposition = DropACL
					t.Where = cur
					t.Detail = fmt.Sprintf("acl %s out on %s", outItf.ACLOut, e.OutIf)
					return t
				}
			}
		}

		// Resolve the next hop on the egress segment.
		nhAddr := e.NextHop
		if e.Connected() {
			nhAddr = f.Dst
		}
		nextEp, found := s.resolve(netmodel.Endpoint{Device: cur, Interface: e.OutIf}, nhAddr)
		if !found {
			t.Hops = append(t.Hops, Hop{Device: cur, InIf: inIf, OutIf: e.OutIf})
			t.Disposition = DropARPFail
			t.Where = cur
			t.Detail = fmt.Sprintf("no neighbor %s via %s", nhAddr, e.OutIf)
			return t
		}

		t.Hops = append(t.Hops, Hop{Device: cur, InIf: inIf, OutIf: e.OutIf})
		cur = nextEp.Device
		inIf = nextEp.Interface
	}
	t.Disposition = DropLoop
	t.Where = cur
	return t
}

// resolve finds the adjacent endpoint owning addr as seen from the egress
// endpoint (the ARP step).
func (s *Snapshot) resolve(from netmodel.Endpoint, addr netip.Addr) (netmodel.Endpoint, bool) {
	for _, ep := range s.adj[from] {
		d := s.net.Devices[ep.Device]
		if d == nil {
			continue
		}
		itf := d.Interface(ep.Interface)
		if itf != nil && itf.HasAddr() && itf.Addr.Addr() == addr {
			return ep, true
		}
	}
	return netmodel.Endpoint{}, false
}

// Reach traces host-to-host traffic: the flow's source and destination
// addresses are looked up from the named hosts. It returns the trace and an
// error when either host is unknown or unaddressed.
//
// Results are memoized per (srcHost, dstHost, proto, dstPort) for the
// snapshot's lifetime, so policy checkers and the attack-surface sweep can
// re-ask for the same flow without retracing it. Callers share the
// returned trace and must treat it as read-only (every caller in the tree
// already does). Reach is safe for concurrent use.
func (s *Snapshot) Reach(srcHost, dstHost string, proto netmodel.Protocol, dstPort uint16) (*Trace, error) {
	k := flowKey{src: srcHost, dst: dstHost, proto: proto, dstPort: dstPort}
	if r, ok := s.flows.lookup(k); ok {
		return r.tr, r.err
	}
	tr, err := s.reach(srcHost, dstHost, proto, dstPort)
	r := s.flows.store(k, &flowResult{tr: tr, err: err})
	return r.tr, r.err
}

// reach is the uncached trace computation behind Reach.
func (s *Snapshot) reach(srcHost, dstHost string, proto netmodel.Protocol, dstPort uint16) (*Trace, error) {
	src, ok := s.net.HostAddr(srcHost)
	if !ok {
		return nil, fmt.Errorf("dataplane: no such host %q", srcHost)
	}
	dst, ok := s.net.HostAddr(dstHost)
	if !ok {
		return nil, fmt.Errorf("dataplane: no such host %q", dstHost)
	}
	f := Flow{Proto: proto, Src: src, Dst: dst, DstPort: dstPort}
	if proto == netmodel.TCP || proto == netmodel.UDP {
		f.SrcPort = 40000
	}
	return s.TraceFrom(srcHost, f), nil
}

// BGPPeer describes one configured BGP neighbor and its session state.
type BGPPeer struct {
	LocalDevice string
	PeerAddr    netip.Addr
	RemoteAS    int
	// Established is true when the session formed (mutual configuration,
	// matching AS numbers, shared subnet).
	Established bool
	// PeerDevice is the device owning the peer address once established.
	PeerDevice string
}

// BGPPeers returns the device's configured neighbors with session state.
func (s *Snapshot) BGPPeers(device string) []BGPPeer {
	d := s.net.Devices[device]
	if d == nil || d.BGP == nil {
		return nil
	}
	var out []BGPPeer
	for _, nb := range d.BGP.Neighbors {
		p := BGPPeer{LocalDevice: device, PeerAddr: nb.Addr, RemoteAS: nb.RemoteAS}
		for _, sess := range s.sessions {
			switch {
			case sess.a == device && sess.bAddr == nb.Addr:
				p.Established, p.PeerDevice = true, sess.b
			case sess.b == device && sess.aAddr == nb.Addr:
				p.Established, p.PeerDevice = true, sess.a
			}
		}
		out = append(out, p)
	}
	return out
}

// FormatBGP renders a device's BGP state like "show ip bgp summary".
func (s *Snapshot) FormatBGP(device string) string {
	d := s.net.Devices[device]
	if d == nil || d.BGP == nil {
		return "% BGP not configured"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "BGP local AS %d\n", d.BGP.LocalAS)
	b.WriteString("Neighbor        RemoteAS  State\n")
	for _, p := range s.BGPPeers(device) {
		state := "Idle"
		if p.Established {
			state = "Established (" + p.PeerDevice + ")"
		}
		fmt.Fprintf(&b, "%-15s %-9d %s\n", p.PeerAddr, p.RemoteAS, state)
	}
	var learned []string
	for _, e := range s.ribs[device] {
		if e.Proto == BGP {
			learned = append(learned, "  "+e.String())
		}
	}
	if len(learned) > 0 {
		b.WriteString("Learned routes:\n")
		b.WriteString(strings.Join(learned, "\n"))
		b.WriteString("\n")
	}
	return strings.TrimRight(b.String(), "\n")
}

// FormatRIB renders a device routing table like "show ip route".
func (s *Snapshot) FormatRIB(device string) string {
	rib := s.ribs[device]
	if rib == nil {
		return "% no routing table"
	}
	lines := make([]string, 0, len(rib))
	for _, e := range rib {
		lines = append(lines, e.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
