package config

import (
	"fmt"
	"net/netip"
	"reflect"
	"sort"

	"heimdall/internal/netmodel"
)

// Op identifies the kind of a semantic configuration change.
type Op int

const (
	// OpAddInterface creates a new interface with the given state.
	OpAddInterface Op = iota
	// OpSetInterface replaces the state of an existing interface.
	OpSetInterface
	// OpAddACLEntry inserts one ACL entry (creating the ACL if needed).
	OpAddACLEntry
	// OpRemoveACLEntry deletes one ACL entry by sequence number.
	OpRemoveACLEntry
	// OpRemoveACL deletes a whole ACL.
	OpRemoveACL
	// OpAddStaticRoute installs a static route.
	OpAddStaticRoute
	// OpRemoveStaticRoute withdraws a static route.
	OpRemoveStaticRoute
	// OpSetOSPF replaces the device's OSPF process configuration.
	OpSetOSPF
	// OpRemoveOSPF deletes the OSPF process.
	OpRemoveOSPF
	// OpSetVLAN creates or renames a VLAN.
	OpSetVLAN
	// OpRemoveVLAN deletes a VLAN definition.
	OpRemoveVLAN
	// OpSetGateway changes the device's default gateway.
	OpSetGateway
	// OpSetBGP replaces the device's BGP process configuration.
	OpSetBGP
	// OpRemoveBGP deletes the BGP process.
	OpRemoveBGP
)

var opNames = map[Op]string{
	OpAddInterface: "add-interface", OpSetInterface: "set-interface",
	OpAddACLEntry: "add-acl-entry", OpRemoveACLEntry: "remove-acl-entry",
	OpRemoveACL: "remove-acl", OpAddStaticRoute: "add-static-route",
	OpRemoveStaticRoute: "remove-static-route", OpSetOSPF: "set-ospf",
	OpRemoveOSPF: "remove-ospf", OpSetVLAN: "set-vlan",
	OpRemoveVLAN: "remove-vlan", OpSetGateway: "set-gateway",
	OpSetBGP: "set-bgp", OpRemoveBGP: "remove-bgp",
}

// String returns the kebab-case name of the op.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Change is one semantic configuration change on one device. Exactly the
// payload fields relevant to Op are set.
type Change struct {
	Device string
	Op     Op

	Interface *netmodel.Interface // OpAddInterface, OpSetInterface
	ACLName   string              // ACL ops
	Entry     *netmodel.ACLEntry  // OpAddACLEntry
	Seq       int                 // OpRemoveACLEntry
	Route     *netmodel.StaticRoute
	OSPF      *netmodel.OSPFProcess
	BGP       *netmodel.BGPProcess
	VLAN      *netmodel.VLAN
	VLANID    int // OpRemoveVLAN
	Gateway   netip.Addr
}

// Resource returns the privilege-resource path the change touches, in the
// form consumed by the Privilegemsp evaluator, e.g.
// "device:r3:acl:WEB-IN" or "device:r1:interface:Gi0/0".
func (c Change) Resource() string {
	switch c.Op {
	case OpAddInterface, OpSetInterface:
		return fmt.Sprintf("device:%s:interface:%s", c.Device, c.Interface.Name)
	case OpAddACLEntry, OpRemoveACLEntry, OpRemoveACL:
		return fmt.Sprintf("device:%s:acl:%s", c.Device, c.ACLName)
	case OpAddStaticRoute, OpRemoveStaticRoute:
		return fmt.Sprintf("device:%s:route:%s", c.Device, c.Route.Prefix)
	case OpSetOSPF, OpRemoveOSPF:
		return fmt.Sprintf("device:%s:ospf", c.Device)
	case OpSetBGP, OpRemoveBGP:
		return fmt.Sprintf("device:%s:bgp", c.Device)
	case OpSetVLAN:
		return fmt.Sprintf("device:%s:vlan:%d", c.Device, c.VLAN.ID)
	case OpRemoveVLAN:
		return fmt.Sprintf("device:%s:vlan:%d", c.Device, c.VLANID)
	case OpSetGateway:
		return fmt.Sprintf("device:%s:gateway", c.Device)
	}
	return "device:" + c.Device
}

// Action returns the privilege-action name of the change, e.g.
// "config.acl.add".
func (c Change) Action() string {
	switch c.Op {
	case OpAddInterface:
		return "config.interface.add"
	case OpSetInterface:
		return "config.interface.set"
	case OpAddACLEntry:
		return "config.acl.add"
	case OpRemoveACLEntry:
		return "config.acl.remove"
	case OpRemoveACL:
		return "config.acl.remove"
	case OpAddStaticRoute:
		return "config.route.add"
	case OpRemoveStaticRoute:
		return "config.route.remove"
	case OpSetOSPF:
		return "config.ospf.set"
	case OpRemoveOSPF:
		return "config.ospf.remove"
	case OpSetBGP:
		return "config.bgp.set"
	case OpRemoveBGP:
		return "config.bgp.remove"
	case OpSetVLAN:
		return "config.vlan.set"
	case OpRemoveVLAN:
		return "config.vlan.remove"
	case OpSetGateway:
		return "config.gateway.set"
	}
	return "config.unknown"
}

// String renders the change for logs and audit entries.
func (c Change) String() string {
	switch c.Op {
	case OpAddACLEntry:
		return fmt.Sprintf("%s %s: %s", c.Device, c.Op, FormatACLEntry(c.Entry))
	case OpRemoveACLEntry:
		return fmt.Sprintf("%s %s: %s seq %d", c.Device, c.Op, c.ACLName, c.Seq)
	case OpAddStaticRoute, OpRemoveStaticRoute:
		return fmt.Sprintf("%s %s: %s via %s", c.Device, c.Op, c.Route.Prefix, c.Route.NextHop)
	case OpAddInterface, OpSetInterface:
		state := "up"
		if c.Interface.Shutdown {
			state = "shutdown"
		}
		return fmt.Sprintf("%s %s: %s (%s)", c.Device, c.Op, c.Interface.Name, state)
	default:
		return fmt.Sprintf("%s %s: %s", c.Device, c.Op, c.Resource())
	}
}

// Additive reports whether the change can only add connectivity (safe to
// apply early) as opposed to removing it. The enforcer's scheduler applies
// additive changes before subtractive ones to avoid transient blackholes.
func (c Change) Additive() bool {
	switch c.Op {
	case OpAddACLEntry:
		return c.Entry.Action == netmodel.Permit
	case OpAddStaticRoute, OpSetVLAN, OpAddInterface, OpSetOSPF, OpSetBGP, OpSetGateway:
		return true
	case OpSetInterface:
		return !c.Interface.Shutdown
	}
	return false
}

// DiffDevice computes the semantic changes that transform old into new.
// Both devices must have the same name.
func DiffDevice(old, new *netmodel.Device) []Change {
	var out []Change
	dev := old.Name

	// Interfaces.
	for _, name := range new.InterfaceNames() {
		ni := new.Interfaces[name]
		oi := old.Interfaces[name]
		if oi == nil {
			out = append(out, Change{Device: dev, Op: OpAddInterface, Interface: ni.Clone()})
			continue
		}
		if !reflect.DeepEqual(oi, ni) {
			out = append(out, Change{Device: dev, Op: OpSetInterface, Interface: ni.Clone()})
		}
	}

	// ACLs: entry-level diff.
	for _, name := range new.ACLNames() {
		na, oa := new.ACLs[name], old.ACLs[name]
		oldBySeq := make(map[int]netmodel.ACLEntry)
		if oa != nil {
			for _, e := range oa.Entries {
				oldBySeq[e.Seq] = e
			}
		}
		for _, e := range na.Entries {
			oe, ok := oldBySeq[e.Seq]
			if ok && oe == e {
				delete(oldBySeq, e.Seq)
				continue
			}
			if ok {
				// Replacement: remove then add.
				out = append(out, Change{Device: dev, Op: OpRemoveACLEntry, ACLName: name, Seq: e.Seq})
				delete(oldBySeq, e.Seq)
			}
			ee := e
			out = append(out, Change{Device: dev, Op: OpAddACLEntry, ACLName: name, Entry: &ee})
		}
		var stale []int
		for seq := range oldBySeq {
			stale = append(stale, seq)
		}
		sort.Ints(stale)
		for _, seq := range stale {
			out = append(out, Change{Device: dev, Op: OpRemoveACLEntry, ACLName: name, Seq: seq})
		}
	}
	for _, name := range old.ACLNames() {
		if new.ACLs[name] == nil {
			out = append(out, Change{Device: dev, Op: OpRemoveACL, ACLName: name})
		}
	}

	// Static routes.
	routeKey := func(r netmodel.StaticRoute) string {
		return fmt.Sprintf("%s|%s|%d", r.Prefix, r.NextHop, r.Distance)
	}
	oldRoutes := make(map[string]netmodel.StaticRoute)
	for _, r := range old.StaticRoutes {
		oldRoutes[routeKey(r)] = r
	}
	for _, r := range new.StaticRoutes {
		if _, ok := oldRoutes[routeKey(r)]; ok {
			delete(oldRoutes, routeKey(r))
			continue
		}
		rr := r
		out = append(out, Change{Device: dev, Op: OpAddStaticRoute, Route: &rr})
	}
	var staleRoutes []string
	for k := range oldRoutes {
		staleRoutes = append(staleRoutes, k)
	}
	sort.Strings(staleRoutes)
	for _, k := range staleRoutes {
		rr := oldRoutes[k]
		out = append(out, Change{Device: dev, Op: OpRemoveStaticRoute, Route: &rr})
	}

	// OSPF.
	switch {
	case old.OSPF == nil && new.OSPF != nil:
		out = append(out, Change{Device: dev, Op: OpSetOSPF, OSPF: new.OSPF.Clone()})
	case old.OSPF != nil && new.OSPF == nil:
		out = append(out, Change{Device: dev, Op: OpRemoveOSPF})
	case old.OSPF != nil && !reflect.DeepEqual(old.OSPF, new.OSPF):
		out = append(out, Change{Device: dev, Op: OpSetOSPF, OSPF: new.OSPF.Clone()})
	}

	// BGP.
	switch {
	case old.BGP == nil && new.BGP != nil:
		out = append(out, Change{Device: dev, Op: OpSetBGP, BGP: new.BGP.Clone()})
	case old.BGP != nil && new.BGP == nil:
		out = append(out, Change{Device: dev, Op: OpRemoveBGP})
	case old.BGP != nil && !reflect.DeepEqual(old.BGP, new.BGP):
		out = append(out, Change{Device: dev, Op: OpSetBGP, BGP: new.BGP.Clone()})
	}

	// VLANs.
	for _, id := range new.VLANIDs() {
		nv, ov := new.VLANs[id], old.VLANs[id]
		if ov == nil || *ov != *nv {
			vv := *nv
			out = append(out, Change{Device: dev, Op: OpSetVLAN, VLAN: &vv})
		}
	}
	for _, id := range old.VLANIDs() {
		if new.VLANs[id] == nil {
			out = append(out, Change{Device: dev, Op: OpRemoveVLAN, VLANID: id})
		}
	}

	// Default gateway.
	if old.DefaultGateway != new.DefaultGateway {
		out = append(out, Change{Device: dev, Op: OpSetGateway, Gateway: new.DefaultGateway})
	}
	return out
}

// DiffNetwork computes per-device changes across two snapshots of the same
// network (devices present only in one side are ignored: Heimdall tickets
// never add or remove devices).
func DiffNetwork(old, new *netmodel.Network) []Change {
	var out []Change
	for _, name := range old.DeviceNames() {
		nd := new.Devices[name]
		if nd == nil {
			continue
		}
		out = append(out, DiffDevice(old.Devices[name], nd)...)
	}
	return out
}

// ApplyChange mutates the device according to the change. It returns an
// error when the change references state that does not exist.
func ApplyChange(d *netmodel.Device, c Change) error {
	if d.Name != c.Device {
		return fmt.Errorf("config: change for %s applied to %s", c.Device, d.Name)
	}
	switch c.Op {
	case OpAddInterface, OpSetInterface:
		d.Interfaces[c.Interface.Name] = c.Interface.Clone()
	case OpAddACLEntry:
		d.ACL(c.ACLName, true).InsertEntry(*c.Entry)
	case OpRemoveACLEntry:
		a := d.ACL(c.ACLName, false)
		if a == nil || !a.RemoveEntry(c.Seq) {
			return fmt.Errorf("config: %s: no entry %s seq %d", d.Name, c.ACLName, c.Seq)
		}
	case OpRemoveACL:
		if _, ok := d.ACLs[c.ACLName]; !ok {
			return fmt.Errorf("config: %s: no ACL %s", d.Name, c.ACLName)
		}
		delete(d.ACLs, c.ACLName)
	case OpAddStaticRoute:
		d.StaticRoutes = append(d.StaticRoutes, *c.Route)
	case OpRemoveStaticRoute:
		for i, r := range d.StaticRoutes {
			if r == *c.Route {
				d.StaticRoutes = append(d.StaticRoutes[:i], d.StaticRoutes[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("config: %s: no route %s via %s", d.Name, c.Route.Prefix, c.Route.NextHop)
	case OpSetOSPF:
		d.OSPF = c.OSPF.Clone()
	case OpRemoveOSPF:
		d.OSPF = nil
	case OpSetBGP:
		d.BGP = c.BGP.Clone()
	case OpRemoveBGP:
		d.BGP = nil
	case OpSetVLAN:
		v := *c.VLAN
		d.VLANs[v.ID] = &v
	case OpRemoveVLAN:
		if _, ok := d.VLANs[c.VLANID]; !ok {
			return fmt.Errorf("config: %s: no VLAN %d", d.Name, c.VLANID)
		}
		delete(d.VLANs, c.VLANID)
	case OpSetGateway:
		d.DefaultGateway = c.Gateway
	default:
		return fmt.Errorf("config: unknown op %v", c.Op)
	}
	return nil
}

// ApplyChanges applies every change to the network in order, stopping at
// the first error.
func ApplyChanges(n *netmodel.Network, changes []Change) error {
	for _, c := range changes {
		d := n.Devices[c.Device]
		if d == nil {
			return fmt.Errorf("config: change for unknown device %s", c.Device)
		}
		if err := ApplyChange(d, c); err != nil {
			return err
		}
	}
	return nil
}
