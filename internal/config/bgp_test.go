package config

import (
	"net/netip"
	"reflect"
	"strings"
	"testing"
)

const sampleBGPRouter = `! kind: router
hostname edge
!
interface GigabitEthernet0/0
 ip address 203.0.113.1 255.255.255.252
 no shutdown
!
router bgp 65001
 bgp router-id 1.1.1.1
 neighbor 203.0.113.2 remote-as 65010
 neighbor 203.0.113.6 remote-as 65020
 network 10.1.0.0 mask 255.255.255.0
 redistribute connected
!
`

func TestParseBGP(t *testing.T) {
	d, err := Parse("edge", sampleBGPRouter)
	if err != nil {
		t.Fatal(err)
	}
	g := d.BGP
	if g == nil || g.LocalAS != 65001 || g.RouterID != netip.MustParseAddr("1.1.1.1") {
		t.Fatalf("BGP = %+v", g)
	}
	if len(g.Neighbors) != 2 || g.Neighbors[0].RemoteAS != 65010 {
		t.Fatalf("neighbors = %+v", g.Neighbors)
	}
	if len(g.Networks) != 1 || g.Networks[0] != netip.MustParsePrefix("10.1.0.0/24") {
		t.Fatalf("networks = %+v", g.Networks)
	}
	if !g.RedistributeConnected {
		t.Fatal("redistribute connected not parsed")
	}
}

func TestBGPPrintParseRoundTrip(t *testing.T) {
	d, err := Parse("edge", sampleBGPRouter)
	if err != nil {
		t.Fatal(err)
	}
	text := Print(d)
	if !strings.Contains(text, "router bgp 65001") {
		t.Fatalf("printed config missing BGP:\n%s", text)
	}
	d2, err := Parse("edge", text)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, d2) {
		t.Fatalf("BGP round trip mismatch:\n%s", text)
	}
}

func TestBGPParseErrors(t *testing.T) {
	bad := []string{
		"router bgp zero\n",
		"router bgp 65001\n bgp router-id nonsense\n",
		"router bgp 65001\n neighbor nonsense remote-as 1\n",
		"router bgp 65001\n neighbor 1.2.3.4 remote-as x\n",
		"router bgp 65001\n network 10.0.0.0 mask 255.0.255.0\n",
		"router bgp 65001\n frobnicate\n",
	}
	for _, text := range bad {
		if _, err := Parse("x", text); err == nil {
			t.Errorf("accepted: %q", text)
		}
	}
}

func TestBGPDiffAndApply(t *testing.T) {
	oldDev, _ := Parse("edge", sampleBGPRouter)

	// Neighbor AS change produces OpSetBGP; applying reproduces it.
	newDev := oldDev.Clone()
	newDev.BGP.SetNeighbor(netip.MustParseAddr("203.0.113.2"), 65011)
	changes := DiffDevice(oldDev, newDev)
	if len(changes) != 1 || changes[0].Op != OpSetBGP {
		t.Fatalf("changes = %v", changes)
	}
	if changes[0].Action() != "config.bgp.set" || changes[0].Resource() != "device:edge:bgp" {
		t.Fatalf("metadata = %s %s", changes[0].Action(), changes[0].Resource())
	}
	if !changes[0].Additive() {
		t.Fatal("BGP set should schedule in the additive phase")
	}
	got := oldDev.Clone()
	for _, c := range changes {
		if err := ApplyChange(got, c); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(got, newDev) {
		t.Fatal("apply(diff) mismatch")
	}

	// Process removal.
	gone := oldDev.Clone()
	gone.BGP = nil
	changes = DiffDevice(oldDev, gone)
	if len(changes) != 1 || changes[0].Op != OpRemoveBGP {
		t.Fatalf("removal changes = %v", changes)
	}
	got = oldDev.Clone()
	if err := ApplyChange(got, changes[0]); err != nil {
		t.Fatal(err)
	}
	if got.BGP != nil {
		t.Fatal("BGP not removed")
	}

	// Process addition.
	changes = DiffDevice(gone, oldDev)
	if len(changes) != 1 || changes[0].Op != OpSetBGP {
		t.Fatalf("addition changes = %v", changes)
	}
}

func TestBGPSanitizeKeepsProcess(t *testing.T) {
	d, _ := Parse("edge", sampleBGPRouter)
	s := Sanitize(d)
	if s.BGP == nil || s.BGP.LocalAS != 65001 {
		t.Fatal("sanitize dropped BGP (peering data is configuration, not secret)")
	}
}

func TestBGPCloneIsDeep(t *testing.T) {
	d, _ := Parse("edge", sampleBGPRouter)
	c := d.Clone()
	c.BGP.SetNeighbor(netip.MustParseAddr("203.0.113.2"), 99)
	c.BGP.Networks = append(c.BGP.Networks, netip.MustParsePrefix("172.16.0.0/12"))
	if d.BGP.Neighbors[0].RemoteAS != 65010 || len(d.BGP.Networks) != 1 {
		t.Fatal("BGP clone aliases original")
	}
}
