// Package config translates between vendor-style (Cisco IOS-like)
// configuration text and the netmodel semantic model. It provides a parser,
// a canonical printer, and a semantic differ whose output drives the policy
// enforcer's change scheduler.
package config

import (
	"fmt"
	"math/bits"
	"net/netip"
)

// maskToBits converts a dotted-quad netmask (255.255.255.0) to a prefix
// length. It rejects non-contiguous masks.
func maskToBits(mask string) (int, error) {
	a, err := netip.ParseAddr(mask)
	if err != nil || !a.Is4() {
		return 0, fmt.Errorf("config: bad netmask %q", mask)
	}
	b := a.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	ones := bits.OnesCount32(v)
	if v != ^uint32(0)<<(32-ones) && v != 0 {
		return 0, fmt.Errorf("config: non-contiguous netmask %q", mask)
	}
	return ones, nil
}

// wildcardToBits converts an IOS wildcard mask (0.0.0.255) to a prefix
// length. It rejects non-contiguous wildcards.
func wildcardToBits(wc string) (int, error) {
	a, err := netip.ParseAddr(wc)
	if err != nil || !a.Is4() {
		return 0, fmt.Errorf("config: bad wildcard %q", wc)
	}
	b := a.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	inv := ^v
	ones := bits.OnesCount32(inv)
	if inv != ^uint32(0)<<(32-ones) && inv != 0 {
		return 0, fmt.Errorf("config: non-contiguous wildcard %q", wc)
	}
	return ones, nil
}

// ParseAddrMask combines an address and netmask into a prefix, keeping the
// host bits (the interface address form: 10.0.0.1 255.255.255.0 -> 10.0.0.1/24).
func ParseAddrMask(addr, mask string) (netip.Prefix, error) {
	return parseAddrMask(addr, mask)
}

// ParseNetWildcard combines a network address and IOS wildcard mask into a
// masked prefix (10.1.2.0 0.0.0.255 -> 10.1.2.0/24).
func ParseNetWildcard(addr, wc string) (netip.Prefix, error) {
	return parseNetWildcard(addr, wc)
}

// parseAddrMask combines an address and netmask into a prefix, keeping the
// host bits (the interface address form: 10.0.0.1 255.255.255.0 -> 10.0.0.1/24).
func parseAddrMask(addr, mask string) (netip.Prefix, error) {
	a, err := netip.ParseAddr(addr)
	if err != nil {
		return netip.Prefix{}, fmt.Errorf("config: bad address %q", addr)
	}
	ones, err := maskToBits(mask)
	if err != nil {
		return netip.Prefix{}, err
	}
	return netip.PrefixFrom(a, ones), nil
}

// parseNetWildcard combines a network address and wildcard into a masked
// prefix (10.1.2.0 0.0.0.255 -> 10.1.2.0/24).
func parseNetWildcard(addr, wc string) (netip.Prefix, error) {
	a, err := netip.ParseAddr(addr)
	if err != nil {
		return netip.Prefix{}, fmt.Errorf("config: bad network %q", addr)
	}
	ones, err := wildcardToBits(wc)
	if err != nil {
		return netip.Prefix{}, err
	}
	return netip.PrefixFrom(a, ones).Masked(), nil
}

// bitsToMask renders a prefix length as a dotted-quad netmask.
func bitsToMask(ones int) string {
	v := uint32(0)
	if ones > 0 {
		v = ^uint32(0) << (32 - ones)
	}
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// bitsToWildcard renders a prefix length as an IOS wildcard mask.
func bitsToWildcard(ones int) string {
	v := ^uint32(0)
	if ones > 0 {
		v = ^(^uint32(0) << (32 - ones))
	}
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
