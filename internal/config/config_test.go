package config

import (
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"

	"heimdall/internal/netmodel"
)

const sampleRouter = `! kind: router
hostname r3
enable secret s3cr3t
!
interface GigabitEthernet0/0
 description to r2
 ip address 10.0.23.3 255.255.255.252
 no shutdown
!
interface GigabitEthernet0/1
 description to r4
 ip address 10.0.34.3 255.255.255.252
 ip access-group CORE-IN in
 no shutdown
!
ip access-list extended CORE-IN
 10 deny tcp any host 10.4.0.10 eq 80
 20 permit ip any any
!
ip route 10.9.0.0 255.255.0.0 10.0.23.2
ip route 0.0.0.0 0.0.0.0 10.0.23.2 200
!
router ospf 1
 router-id 3.3.3.3
 network 10.0.0.0 0.0.255.255 area 0
 passive-interface GigabitEthernet0/1
!
`

func TestParseRouter(t *testing.T) {
	d, err := Parse("r3", sampleRouter)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != netmodel.Router || d.Name != "r3" {
		t.Fatalf("kind/name = %v/%s", d.Kind, d.Name)
	}
	g0 := d.Interface("GigabitEthernet0/0")
	if g0 == nil || g0.Addr.String() != "10.0.23.3/30" || g0.Shutdown {
		t.Fatalf("Gi0/0 parsed wrong: %+v", g0)
	}
	g1 := d.Interface("GigabitEthernet0/1")
	if g1.ACLIn != "CORE-IN" {
		t.Fatalf("Gi0/1 ACLIn = %q", g1.ACLIn)
	}
	acl := d.ACL("CORE-IN", false)
	if acl == nil || len(acl.Entries) != 2 {
		t.Fatalf("ACL parsed wrong: %+v", acl)
	}
	e := acl.Entries[0]
	if e.Action != netmodel.Deny || e.Proto != netmodel.TCP || e.DstPort != 80 ||
		e.Dst.String() != "10.4.0.10/32" || e.Src.IsValid() {
		t.Fatalf("entry 10 parsed wrong: %+v", e)
	}
	if len(d.StaticRoutes) != 2 {
		t.Fatalf("routes = %+v", d.StaticRoutes)
	}
	// Routes are canonically sorted; the default route sorts first.
	if d.StaticRoutes[0].Distance != 200 || d.StaticRoutes[0].Prefix.String() != "0.0.0.0/0" {
		t.Fatalf("default route parsed wrong: %+v", d.StaticRoutes[0])
	}
	if d.OSPF == nil || d.OSPF.RouterID != netip.MustParseAddr("3.3.3.3") {
		t.Fatalf("OSPF parsed wrong: %+v", d.OSPF)
	}
	if !d.OSPF.Passive["GigabitEthernet0/1"] {
		t.Fatal("passive-interface missing")
	}
	area, ok := d.OSPF.EnabledArea(netip.MustParseAddr("10.0.23.3"))
	if !ok || area != 0 {
		t.Fatalf("OSPF network statement wrong: area=%d ok=%v", area, ok)
	}
	if d.Secrets["enable"] != "s3cr3t" {
		t.Fatal("enable secret not captured")
	}
}

func TestParseSwitchAndHost(t *testing.T) {
	sw, err := Parse("sw1", `! kind: switch
hostname sw1
vlan 10
 name users
vlan 20
 name servers
!
interface GigabitEthernet1/0/1
 switchport mode access
 switchport access vlan 10
 no shutdown
!
interface GigabitEthernet1/0/24
 switchport mode trunk
 switchport trunk allowed vlan 10,20
 no shutdown
!
interface Vlan10
 ip address 10.10.0.1 255.255.255.0
 no shutdown
!
`)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Kind != netmodel.Switch {
		t.Fatalf("kind = %v", sw.Kind)
	}
	if sw.VLANs[10].Name != "users" || sw.VLANs[20].Name != "servers" {
		t.Fatalf("VLANs = %+v", sw.VLANs)
	}
	if got := sw.Interface("GigabitEthernet1/0/1"); got.Mode != netmodel.Access || got.AccessVLAN != 10 {
		t.Fatalf("access port = %+v", got)
	}
	if got := sw.Interface("GigabitEthernet1/0/24"); got.Mode != netmodel.Trunk || !reflect.DeepEqual(got.TrunkVLANs, []int{10, 20}) {
		t.Fatalf("trunk port = %+v", got)
	}
	if svi := sw.Interface("Vlan10"); !svi.IsSVI() || svi.Addr.String() != "10.10.0.1/24" {
		t.Fatalf("SVI = %+v", svi)
	}

	h, err := Parse("h1", `! kind: host
hostname h1
interface eth0
 ip address 10.10.0.5 255.255.255.0
 no shutdown
!
ip default-gateway 10.10.0.1
`)
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind != netmodel.Host || h.DefaultGateway != netip.MustParseAddr("10.10.0.1") {
		t.Fatalf("host = %+v", h)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"unknown top", "flurble\n"},
		{"orphan indent", " ip address 1.2.3.4 255.0.0.0\n"},
		{"bad vlan", "vlan nope\n"},
		{"bad route mask", "ip route 10.0.0.0 255.0.255.0 10.0.0.1\n"},
		{"bad acl action", "ip access-list extended A\n 10 block ip any any\n"},
		{"bad acl port", "ip access-list extended A\n 10 permit tcp any any eq 99999\n"},
		{"bad ospf area", "router ospf 1\n network 10.0.0.0 0.0.0.255 area x\n"},
		{"bad gateway", "ip default-gateway nope\n"},
		{"bad wildcard", "ip access-list extended A\n 10 permit ip 10.0.0.0 0.0.255.3 any\n"},
		{"bad iface stmt", "interface Gi0/0\n frobnicate\n"},
		{"bad direction", "interface Gi0/0\n ip access-group A sideways\n"},
	}
	for _, tc := range cases {
		if _, err := Parse("x", tc.text); err == nil {
			t.Errorf("%s: expected parse error", tc.name)
		} else if _, ok := err.(*ParseError); !ok {
			t.Errorf("%s: error is %T, want *ParseError", tc.name, err)
		}
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	d, err := Parse("r3", sampleRouter)
	if err != nil {
		t.Fatal(err)
	}
	text := Print(d)
	d2, err := Parse("r3", text)
	if err != nil {
		t.Fatalf("re-parse of printed config failed: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(d, d2) {
		t.Fatalf("round trip changed the model.\noriginal: %+v\nreparsed: %+v\ntext:\n%s", d, d2, text)
	}
	// Printing is canonical: Print(Parse(Print(d))) == Print(d).
	if text2 := Print(d2); text2 != text {
		t.Fatalf("printing is not canonical:\n%s\nvs\n%s", text, text2)
	}
}

func TestCountLines(t *testing.T) {
	text := "hostname x\n!\n\ninterface Gi0/0\n ip address 1.2.3.4 255.0.0.0\n! comment\n"
	if got := CountLines(text); got != 3 {
		t.Fatalf("CountLines = %d, want 3", got)
	}
}

func TestSanitizeRedactsSecrets(t *testing.T) {
	d, _ := Parse("r3", sampleRouter)
	s := Sanitize(d)
	if s.Secrets["enable"] != "<redacted>" {
		t.Fatalf("secret not redacted: %q", s.Secrets["enable"])
	}
	if d.Secrets["enable"] != "s3cr3t" {
		t.Fatal("sanitize mutated the original")
	}
	if !strings.Contains(Print(s), "<redacted>") {
		t.Fatal("printed sanitized config leaks secret")
	}
}

func TestDiffDeviceAndApply(t *testing.T) {
	oldDev, _ := Parse("r3", sampleRouter)
	newDev := oldDev.Clone()

	// Make a representative set of edits.
	newDev.Interfaces["GigabitEthernet0/0"].Shutdown = true
	newDev.AddInterface("Loopback0").Addr = netip.MustParsePrefix("3.3.3.3/32")
	acl := newDev.ACLs["CORE-IN"]
	acl.RemoveEntry(10)
	acl.InsertEntry(netmodel.ACLEntry{Seq: 15, Action: netmodel.Permit, Proto: netmodel.TCP, DstPort: 443})
	newDev.StaticRoutes = newDev.StaticRoutes[:1]
	newDev.OSPF.Passive["Loopback0"] = true
	newDev.VLANs[30] = &netmodel.VLAN{ID: 30, Name: "mgmt"}

	changes := DiffDevice(oldDev, newDev)
	if len(changes) == 0 {
		t.Fatal("no changes detected")
	}
	ops := map[Op]int{}
	for _, c := range changes {
		ops[c.Op]++
	}
	for _, want := range []Op{OpSetInterface, OpAddInterface, OpAddACLEntry, OpRemoveACLEntry, OpRemoveStaticRoute, OpSetOSPF, OpSetVLAN} {
		if ops[want] == 0 {
			t.Errorf("missing op %v in %v", want, changes)
		}
	}

	// Applying the diff to a clone of old reproduces new.
	got := oldDev.Clone()
	for _, c := range changes {
		if err := ApplyChange(got, c); err != nil {
			t.Fatalf("apply %v: %v", c, err)
		}
	}
	if !reflect.DeepEqual(got, newDev) {
		t.Fatalf("apply(diff) != new:\n got %+v\nwant %+v", got, newDev)
	}
}

func TestDiffIdentityIsEmpty(t *testing.T) {
	d, _ := Parse("r3", sampleRouter)
	if changes := DiffDevice(d, d.Clone()); len(changes) != 0 {
		t.Fatalf("diff of identical devices = %v", changes)
	}
}

func TestApplyChangeErrors(t *testing.T) {
	d, _ := Parse("r3", sampleRouter)
	cases := []Change{
		{Device: "other", Op: OpRemoveOSPF},
		{Device: "r3", Op: OpRemoveACLEntry, ACLName: "CORE-IN", Seq: 999},
		{Device: "r3", Op: OpRemoveACL, ACLName: "NOPE"},
		{Device: "r3", Op: OpRemoveVLAN, VLANID: 99},
		{Device: "r3", Op: OpRemoveStaticRoute, Route: &netmodel.StaticRoute{Prefix: netip.MustParsePrefix("99.0.0.0/8"), NextHop: netip.MustParseAddr("1.1.1.1")}},
	}
	for i, c := range cases {
		if err := ApplyChange(d, c); err == nil {
			t.Errorf("case %d (%v): expected error", i, c)
		}
	}
}

func TestChangeMetadata(t *testing.T) {
	permit := Change{Device: "r1", Op: OpAddACLEntry, ACLName: "A",
		Entry: &netmodel.ACLEntry{Seq: 10, Action: netmodel.Permit}}
	deny := Change{Device: "r1", Op: OpAddACLEntry, ACLName: "A",
		Entry: &netmodel.ACLEntry{Seq: 20, Action: netmodel.Deny}}
	shut := Change{Device: "r1", Op: OpSetInterface,
		Interface: &netmodel.Interface{Name: "Gi0/0", Shutdown: true}}

	if !permit.Additive() || deny.Additive() || shut.Additive() {
		t.Fatal("Additive classification wrong")
	}
	if permit.Resource() != "device:r1:acl:A" {
		t.Fatalf("Resource = %q", permit.Resource())
	}
	if permit.Action() != "config.acl.add" {
		t.Fatalf("Action = %q", permit.Action())
	}
	if shut.Resource() != "device:r1:interface:Gi0/0" {
		t.Fatalf("Resource = %q", shut.Resource())
	}
	for _, c := range []Change{permit, deny, shut} {
		if c.String() == "" {
			t.Error("empty String()")
		}
	}
}

func TestMaskHelpers(t *testing.T) {
	if got := bitsToMask(24); got != "255.255.255.0" {
		t.Fatalf("bitsToMask(24) = %q", got)
	}
	if got := bitsToMask(0); got != "0.0.0.0" {
		t.Fatalf("bitsToMask(0) = %q", got)
	}
	if got := bitsToWildcard(24); got != "0.0.0.255" {
		t.Fatalf("bitsToWildcard(24) = %q", got)
	}
	if got := bitsToWildcard(32); got != "0.0.0.0" {
		t.Fatalf("bitsToWildcard(32) = %q", got)
	}
	if got := bitsToWildcard(0); got != "255.255.255.255" {
		t.Fatalf("bitsToWildcard(0) = %q", got)
	}
	for bits := 0; bits <= 32; bits++ {
		m, err := maskToBits(bitsToMask(bits))
		if err != nil || m != bits {
			t.Fatalf("mask round trip %d: %d %v", bits, m, err)
		}
		w, err := wildcardToBits(bitsToWildcard(bits))
		if err != nil || w != bits {
			t.Fatalf("wildcard round trip %d: %d %v", bits, w, err)
		}
	}
	if _, err := maskToBits("255.0.255.0"); err == nil {
		t.Fatal("non-contiguous mask accepted")
	}
	if _, err := wildcardToBits("0.255.0.255"); err == nil {
		t.Fatal("non-contiguous wildcard accepted")
	}
}

// Property: for randomly generated devices, Parse(Print(d)) == d and
// DiffDevice(d, mutate(d)) applied to d reproduces the mutation.
func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		d := randomDevice(r)
		text := Print(d)
		d2, err := Parse(d.Name, text)
		if err != nil {
			t.Fatalf("trial %d: parse failed: %v\n%s", trial, err, text)
		}
		if !reflect.DeepEqual(d, d2) {
			t.Fatalf("trial %d: round trip mismatch\n%s", trial, text)
		}

		mutated := d.Clone()
		mutateDevice(r, mutated)
		changes := DiffDevice(d, mutated)
		applied := d.Clone()
		for _, c := range changes {
			if err := ApplyChange(applied, c); err != nil {
				t.Fatalf("trial %d: apply: %v", trial, err)
			}
		}
		if !reflect.DeepEqual(applied, mutated) {
			t.Fatalf("trial %d: apply(diff) mismatch: changes=%v", trial, changes)
		}
	}
}

func randomDevice(r *rand.Rand) *netmodel.Device {
	d := netmodel.NewDevice("dev", netmodel.Router)
	for i := 0; i < 1+r.Intn(4); i++ {
		itf := d.AddInterface(ifName(i))
		if r.Intn(4) > 0 {
			itf.Addr = netip.PrefixFrom(addr4(r), 8+r.Intn(23))
		}
		itf.Shutdown = r.Intn(4) == 0
		if r.Intn(3) == 0 {
			itf.ACLIn = "ACL-A"
		}
	}
	if r.Intn(2) == 0 {
		a := d.ACL("ACL-A", true)
		for j := 0; j < 1+r.Intn(4); j++ {
			e := netmodel.ACLEntry{Seq: (j + 1) * 10, Action: netmodel.ACLAction(r.Intn(2)), Proto: netmodel.Protocol(r.Intn(4))}
			if r.Intn(2) == 0 {
				e.Src = netip.PrefixFrom(addr4(r), 8+r.Intn(25)).Masked()
			}
			if r.Intn(2) == 0 {
				e.Dst = netip.PrefixFrom(addr4(r), 32)
			}
			if (e.Proto == netmodel.TCP || e.Proto == netmodel.UDP) && r.Intn(2) == 0 {
				e.DstPort = uint16(1 + r.Intn(65534))
			}
			a.InsertEntry(e)
		}
	}
	for i := 0; i < r.Intn(3); i++ {
		d.StaticRoutes = append(d.StaticRoutes, netmodel.StaticRoute{
			Prefix:  netip.PrefixFrom(addr4(r), 8+r.Intn(17)).Masked(),
			NextHop: addr4(r),
		})
	}
	if r.Intn(2) == 0 {
		d.OSPF = &netmodel.OSPFProcess{
			ProcessID: 1,
			RouterID:  addr4(r),
			Networks:  []netmodel.OSPFNetwork{{Prefix: netip.PrefixFrom(addr4(r), 16).Masked(), Area: r.Intn(3)}},
			Passive:   map[string]bool{},
		}
	}
	if r.Intn(3) == 0 {
		d.VLANs[10] = &netmodel.VLAN{ID: 10, Name: "users"}
	}
	sortRoutes(d.StaticRoutes) // match the parser's canonical order
	return d
}

func mutateDevice(r *rand.Rand, d *netmodel.Device) {
	switch r.Intn(5) {
	case 0:
		for _, itf := range d.Interfaces {
			itf.Shutdown = !itf.Shutdown
			break
		}
	case 1:
		d.ACL("ACL-B", true).InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Permit})
	case 2:
		d.StaticRoutes = append(d.StaticRoutes, netmodel.StaticRoute{
			Prefix: netip.MustParsePrefix("172.16.0.0/12"), NextHop: addr4(r)})
	case 3:
		d.VLANs[42] = &netmodel.VLAN{ID: 42, Name: "new"}
	case 4:
		d.AddInterface("Loopback9").Addr = netip.PrefixFrom(addr4(r), 32)
	}
}

func ifName(i int) string {
	return []string{"GigabitEthernet0/0", "GigabitEthernet0/1", "GigabitEthernet0/2", "GigabitEthernet0/3"}[i]
}

func addr4(r *rand.Rand) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(r.Intn(250)), byte(r.Intn(250)), byte(1 + r.Intn(250))})
}

func TestParseNetwork(t *testing.T) {
	n, err := ParseNetwork("test", map[string]string{
		"r3": sampleRouter,
		"h1": "! kind: host\nhostname h1\ninterface eth0\n ip address 10.4.0.10 255.255.255.0\n no shutdown\n!\nip default-gateway 10.4.0.1\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Devices) != 2 || n.Device("r3") == nil || n.Device("h1").Kind != netmodel.Host {
		t.Fatalf("network = %+v", n)
	}
	if _, err := ParseNetwork("bad", map[string]string{"x": "garbage line\n"}); err == nil {
		t.Fatal("bad config accepted")
	}
}
