package config

import (
	"bufio"
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"heimdall/internal/netmodel"
)

// ParseError describes a configuration syntax error with its line number.
type ParseError struct {
	Device string
	Line   int
	Text   string
	Reason string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("config: %s line %d: %s (%q)", e.Device, e.Line, e.Reason, e.Text)
}

// Parse reads vendor-style configuration text and returns the semantic
// device model. The device kind is taken from the "! kind: <kind>" header
// comment emitted by Print; without one the device defaults to Router.
func Parse(name, text string) (*netmodel.Device, error) {
	kind := netmodel.Router
	if k, ok := sniffKind(text); ok {
		kind = k
	}
	return ParseKind(name, text, kind)
}

func sniffKind(text string) (netmodel.DeviceKind, bool) {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "! kind:"); ok {
			switch strings.TrimSpace(rest) {
			case "router":
				return netmodel.Router, true
			case "switch":
				return netmodel.Switch, true
			case "host":
				return netmodel.Host, true
			}
		}
	}
	return netmodel.Router, false
}

type parser struct {
	dev  *netmodel.Device
	line int
	text string

	// current sub-mode context
	itf *netmodel.Interface
	acl *netmodel.ACL
	osp *netmodel.OSPFProcess
	bgp *netmodel.BGPProcess
	vln *netmodel.VLAN
}

func (p *parser) errf(reason string, args ...any) error {
	return &ParseError{Device: p.dev.Name, Line: p.line, Text: p.text, Reason: fmt.Sprintf(reason, args...)}
}

// ParseKind is Parse with an explicit device kind, overriding any header.
func ParseKind(name, text string, kind netmodel.DeviceKind) (*netmodel.Device, error) {
	p := &parser{dev: netmodel.NewDevice(name, kind)}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		p.line++
		raw := sc.Text()
		p.text = raw
		line := strings.TrimRight(raw, " \t")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "!") {
			// Separators reset the sub-mode, like IOS's "!".
			if trimmed == "!" {
				p.resetMode()
			}
			continue
		}
		indented := line != trimmed
		if !indented {
			p.resetMode()
			if err := p.topLevel(trimmed); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.subMode(trimmed); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("config: reading %s: %w", name, err)
	}
	sortRoutes(p.dev.StaticRoutes)
	return p.dev, nil
}

// sortRoutes puts static routes in the canonical order used by Print, so
// that parsed devices compare equal regardless of statement order.
func sortRoutes(routes []netmodel.StaticRoute) {
	sort.Slice(routes, func(i, j int) bool {
		if routes[i].Prefix != routes[j].Prefix {
			return routes[i].Prefix.String() < routes[j].Prefix.String()
		}
		return routes[i].NextHop.Less(routes[j].NextHop)
	})
}

func (p *parser) resetMode() {
	p.itf, p.acl, p.osp, p.bgp, p.vln = nil, nil, nil, nil, nil
}

func (p *parser) topLevel(line string) error {
	f := strings.Fields(line)
	switch {
	case f[0] == "hostname" && len(f) == 2:
		p.dev.Name = f[1]
	case f[0] == "interface" && len(f) == 2:
		p.itf = p.dev.AddInterface(f[1])
	case f[0] == "vlan" && len(f) == 2:
		id, err := strconv.Atoi(f[1])
		if err != nil || id <= 0 || id > 4094 {
			return p.errf("bad vlan id")
		}
		v, ok := p.dev.VLANs[id]
		if !ok {
			v = &netmodel.VLAN{ID: id}
			p.dev.VLANs[id] = v
		}
		p.vln = v
	case f[0] == "ip" && len(f) >= 2 && f[1] == "route":
		return p.ipRoute(f[2:])
	case f[0] == "ip" && len(f) >= 4 && f[1] == "access-list" && f[2] == "extended":
		p.acl = p.dev.ACL(f[3], true)
	case f[0] == "ip" && len(f) == 3 && f[1] == "default-gateway":
		gw, err := netip.ParseAddr(f[2])
		if err != nil {
			return p.errf("bad default gateway")
		}
		p.dev.DefaultGateway = gw
	case f[0] == "router" && len(f) == 3 && f[1] == "ospf":
		id, err := strconv.Atoi(f[2])
		if err != nil {
			return p.errf("bad ospf process id")
		}
		if p.dev.OSPF == nil {
			p.dev.OSPF = &netmodel.OSPFProcess{ProcessID: id, Passive: make(map[string]bool)}
		}
		p.osp = p.dev.OSPF
	case f[0] == "router" && len(f) == 3 && f[1] == "bgp":
		asn, err := strconv.Atoi(f[2])
		if err != nil || asn <= 0 {
			return p.errf("bad bgp AS number")
		}
		if p.dev.BGP == nil {
			p.dev.BGP = &netmodel.BGPProcess{LocalAS: asn}
		}
		p.bgp = p.dev.BGP
	case f[0] == "enable" && len(f) == 3 && f[1] == "secret":
		p.dev.Secrets["enable"] = f[2]
	case f[0] == "snmp-server" && len(f) >= 3 && f[1] == "community":
		p.dev.Secrets["snmp"] = f[2]
	case f[0] == "crypto" && len(f) >= 4 && f[1] == "isakmp" && f[2] == "key":
		p.dev.Secrets["isakmp"] = f[3]
	default:
		return p.errf("unknown top-level statement")
	}
	return nil
}

func (p *parser) ipRoute(f []string) error {
	// ip route <net> <mask> <nexthop> [distance]
	if len(f) < 3 {
		return p.errf("ip route needs network, mask, next-hop")
	}
	a, err := netip.ParseAddr(f[0])
	if err != nil {
		return p.errf("bad route network")
	}
	ones, err := maskToBits(f[1])
	if err != nil {
		return p.errf("bad route mask")
	}
	nh, err := netip.ParseAddr(f[2])
	if err != nil {
		return p.errf("bad route next-hop")
	}
	r := netmodel.StaticRoute{Prefix: netip.PrefixFrom(a, ones).Masked(), NextHop: nh}
	if len(f) == 4 {
		d, err := strconv.Atoi(f[3])
		if err != nil || d < 1 || d > 255 {
			return p.errf("bad route distance")
		}
		r.Distance = d
	}
	p.dev.StaticRoutes = append(p.dev.StaticRoutes, r)
	return nil
}

func (p *parser) subMode(line string) error {
	switch {
	case p.itf != nil:
		return p.interfaceLine(line)
	case p.acl != nil:
		return p.aclLine(line)
	case p.osp != nil:
		return p.ospfLine(line)
	case p.bgp != nil:
		return p.bgpLine(line)
	case p.vln != nil:
		return p.vlanLine(line)
	}
	return p.errf("indented line outside any section")
}

func (p *parser) interfaceLine(line string) error {
	f := strings.Fields(line)
	switch {
	case f[0] == "description":
		p.itf.Description = strings.TrimSpace(strings.TrimPrefix(line, "description"))
	case f[0] == "ip" && len(f) == 4 && f[1] == "address":
		pfx, err := parseAddrMask(f[2], f[3])
		if err != nil {
			return p.errf("%v", err)
		}
		p.itf.Addr = pfx
	case f[0] == "no" && len(f) == 3 && f[1] == "ip" && f[2] == "address":
		p.itf.Addr = netip.Prefix{}
	case line == "shutdown":
		p.itf.Shutdown = true
	case line == "no shutdown":
		p.itf.Shutdown = false
	case f[0] == "ip" && len(f) == 4 && f[1] == "access-group":
		switch f[3] {
		case "in":
			p.itf.ACLIn = f[2]
		case "out":
			p.itf.ACLOut = f[2]
		default:
			return p.errf("access-group direction must be in or out")
		}
	case f[0] == "no" && len(f) == 5 && f[1] == "ip" && f[2] == "access-group":
		switch f[4] {
		case "in":
			p.itf.ACLIn = ""
		case "out":
			p.itf.ACLOut = ""
		default:
			return p.errf("access-group direction must be in or out")
		}
	case f[0] == "ip" && len(f) == 4 && f[1] == "ospf" && f[2] == "cost":
		cost, err := strconv.Atoi(f[3])
		if err != nil || cost < 1 || cost > 65535 {
			return p.errf("bad ospf cost")
		}
		p.itf.OSPFCost = cost
	case f[0] == "switchport" && len(f) == 3 && f[1] == "mode":
		switch f[2] {
		case "access":
			p.itf.Mode = netmodel.Access
		case "trunk":
			p.itf.Mode = netmodel.Trunk
		default:
			return p.errf("bad switchport mode")
		}
	case f[0] == "switchport" && len(f) == 4 && f[1] == "access" && f[2] == "vlan":
		id, err := strconv.Atoi(f[3])
		if err != nil {
			return p.errf("bad access vlan")
		}
		p.itf.AccessVLAN = id
		if p.itf.Mode == netmodel.Routed {
			p.itf.Mode = netmodel.Access
		}
	case f[0] == "switchport" && len(f) == 5 && f[1] == "trunk" && f[2] == "allowed" && f[3] == "vlan":
		var vlans []int
		for _, s := range strings.Split(f[4], ",") {
			id, err := strconv.Atoi(s)
			if err != nil {
				return p.errf("bad trunk vlan list")
			}
			vlans = append(vlans, id)
		}
		p.itf.TrunkVLANs = vlans
		if p.itf.Mode == netmodel.Routed {
			p.itf.Mode = netmodel.Trunk
		}
	default:
		return p.errf("unknown interface statement")
	}
	return nil
}

func (p *parser) aclLine(line string) error {
	e, err := ParseACLEntry(strings.Fields(line))
	if err != nil {
		return p.errf("%v", err)
	}
	p.acl.InsertEntry(e)
	return nil
}

// ParseACLEntry parses the tokens of one IOS-style ACL entry:
// "SEQ permit|deny PROTO SRC [eq P] DST [eq P]" where SRC and DST are
// "any", "host A", or "A WILDCARD". The console package shares this with
// the parser for its access-list command.
func ParseACLEntry(f []string) (netmodel.ACLEntry, error) {
	if len(f) < 4 {
		return netmodel.ACLEntry{}, fmt.Errorf("short ACL entry")
	}
	seq, err := strconv.Atoi(f[0])
	if err != nil {
		return netmodel.ACLEntry{}, fmt.Errorf("ACL entry must start with a sequence number")
	}
	e := netmodel.ACLEntry{Seq: seq}
	switch f[1] {
	case "permit":
		e.Action = netmodel.Permit
	case "deny":
		e.Action = netmodel.Deny
	default:
		return netmodel.ACLEntry{}, fmt.Errorf("ACL action must be permit or deny")
	}
	proto, err := netmodel.ParseProtocol(f[2])
	if err != nil {
		return netmodel.ACLEntry{}, err
	}
	e.Proto = proto
	rest := f[3:]
	src, sport, rest, err := aclAddrSpec(rest)
	if err != nil {
		return netmodel.ACLEntry{}, err
	}
	dst, dport, rest, err := aclAddrSpec(rest)
	if err != nil {
		return netmodel.ACLEntry{}, err
	}
	if len(rest) != 0 {
		return netmodel.ACLEntry{}, fmt.Errorf("trailing ACL tokens %v", rest)
	}
	e.Src, e.SrcPort, e.Dst, e.DstPort = src, sport, dst, dport
	return e, nil
}

// aclAddrSpec consumes one address spec: "any" | "host A" | "A WILDCARD",
// optionally followed by "eq PORT".
func aclAddrSpec(f []string) (netip.Prefix, uint16, []string, error) {
	if len(f) == 0 {
		return netip.Prefix{}, 0, nil, fmt.Errorf("missing ACL address")
	}
	var pfx netip.Prefix
	switch f[0] {
	case "any":
		f = f[1:]
	case "host":
		if len(f) < 2 {
			return netip.Prefix{}, 0, nil, fmt.Errorf("host needs an address")
		}
		a, err := netip.ParseAddr(f[1])
		if err != nil {
			return netip.Prefix{}, 0, nil, fmt.Errorf("bad host address")
		}
		pfx = netip.PrefixFrom(a, 32)
		f = f[2:]
	default:
		if len(f) < 2 {
			return netip.Prefix{}, 0, nil, fmt.Errorf("address needs a wildcard")
		}
		var err error
		pfx, err = parseNetWildcard(f[0], f[1])
		if err != nil {
			return netip.Prefix{}, 0, nil, err
		}
		f = f[2:]
	}
	var port uint16
	if len(f) >= 2 && f[0] == "eq" {
		v, err := strconv.Atoi(f[1])
		if err != nil || v < 1 || v > 65535 {
			return netip.Prefix{}, 0, nil, fmt.Errorf("bad port")
		}
		port = uint16(v)
		f = f[2:]
	}
	return pfx, port, f, nil
}

func (p *parser) ospfLine(line string) error {
	f := strings.Fields(line)
	switch {
	case f[0] == "router-id" && len(f) == 2:
		id, err := netip.ParseAddr(f[1])
		if err != nil {
			return p.errf("bad router-id")
		}
		p.osp.RouterID = id
	case f[0] == "network" && len(f) == 5 && f[3] == "area":
		pfx, err := parseNetWildcard(f[1], f[2])
		if err != nil {
			return p.errf("%v", err)
		}
		area, err := strconv.Atoi(f[4])
		if err != nil || area < 0 {
			return p.errf("bad area")
		}
		p.osp.Networks = append(p.osp.Networks, netmodel.OSPFNetwork{Prefix: pfx, Area: area})
	case f[0] == "area" && len(f) == 5 && f[2] == "range":
		area, err := strconv.Atoi(f[1])
		if err != nil || area < 0 {
			return p.errf("bad area")
		}
		addr, err := netip.ParseAddr(f[3])
		if err != nil {
			return p.errf("bad range address")
		}
		ones, err := maskToBits(f[4])
		if err != nil {
			return p.errf("%v", err)
		}
		pfx, err := addr.Prefix(ones)
		if err != nil {
			return p.errf("bad range prefix")
		}
		p.osp.Ranges = append(p.osp.Ranges, netmodel.OSPFNetwork{Prefix: pfx, Area: area})
	case f[0] == "passive-interface" && len(f) == 2:
		p.osp.Passive[f[1]] = true
	case f[0] == "no" && len(f) == 3 && f[1] == "passive-interface":
		delete(p.osp.Passive, f[2])
	default:
		return p.errf("unknown ospf statement")
	}
	return nil
}

func (p *parser) bgpLine(line string) error {
	f := strings.Fields(line)
	switch {
	case len(f) == 3 && f[0] == "bgp" && f[1] == "router-id":
		id, err := netip.ParseAddr(f[2])
		if err != nil {
			return p.errf("bad bgp router-id")
		}
		p.bgp.RouterID = id
	case len(f) == 4 && f[0] == "neighbor" && f[2] == "remote-as":
		addr, err := netip.ParseAddr(f[1])
		if err != nil {
			return p.errf("bad bgp neighbor address")
		}
		asn, err := strconv.Atoi(f[3])
		if err != nil || asn <= 0 {
			return p.errf("bad bgp remote-as")
		}
		p.bgp.SetNeighbor(addr, asn)
	case len(f) == 4 && f[0] == "network" && f[2] == "mask":
		pfx, err := parseAddrMask(f[1], f[3])
		if err != nil {
			return p.errf("%v", err)
		}
		p.bgp.Networks = append(p.bgp.Networks, pfx.Masked())
	case len(f) == 2 && f[0] == "redistribute" && f[1] == "connected":
		p.bgp.RedistributeConnected = true
	default:
		return p.errf("unknown bgp statement")
	}
	return nil
}

func (p *parser) vlanLine(line string) error {
	f := strings.Fields(line)
	if f[0] == "name" && len(f) == 2 {
		p.vln.Name = f[1]
		return nil
	}
	return p.errf("unknown vlan statement")
}

// ParseNetwork parses a set of device configurations keyed by device name
// and assembles them into a network without links; the caller cables the
// topology afterwards.
func ParseNetwork(name string, configs map[string]string) (*netmodel.Network, error) {
	n := netmodel.NewNetwork(name)
	for dev, text := range configs {
		d, err := Parse(dev, text)
		if err != nil {
			return nil, err
		}
		d.Name = dev
		n.Devices[dev] = d
	}
	return n, nil
}
