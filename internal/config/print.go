package config

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"heimdall/internal/netmodel"
)

// Print renders a device model as canonical configuration text. Print and
// Parse round-trip: Parse(Print(d)) yields a device semantically equal to d.
// Output is deterministic (sections and names are sorted) so diffs of
// rendered text are stable.
func Print(d *netmodel.Device) string {
	var b strings.Builder
	fmt.Fprintf(&b, "! kind: %s\n", d.Kind)
	fmt.Fprintf(&b, "hostname %s\n!\n", d.Name)

	for _, k := range sortedSecretKinds(d) {
		switch k {
		case "enable":
			fmt.Fprintf(&b, "enable secret %s\n", d.Secrets[k])
		case "snmp":
			fmt.Fprintf(&b, "snmp-server community %s RO\n", d.Secrets[k])
		case "isakmp":
			fmt.Fprintf(&b, "crypto isakmp key %s address 0.0.0.0\n", d.Secrets[k])
		}
	}
	if len(d.Secrets) > 0 {
		b.WriteString("!\n")
	}

	for _, id := range d.VLANIDs() {
		v := d.VLANs[id]
		fmt.Fprintf(&b, "vlan %d\n", v.ID)
		if v.Name != "" {
			fmt.Fprintf(&b, " name %s\n", v.Name)
		}
		b.WriteString("!\n")
	}

	for _, name := range d.InterfaceNames() {
		printInterface(&b, d.Interfaces[name])
	}

	for _, name := range d.ACLNames() {
		a := d.ACLs[name]
		fmt.Fprintf(&b, "ip access-list extended %s\n", a.Name)
		for i := range a.Entries {
			fmt.Fprintf(&b, " %s\n", FormatACLEntry(&a.Entries[i]))
		}
		b.WriteString("!\n")
	}

	routes := append([]netmodel.StaticRoute(nil), d.StaticRoutes...)
	sort.Slice(routes, func(i, j int) bool {
		if routes[i].Prefix != routes[j].Prefix {
			return routes[i].Prefix.String() < routes[j].Prefix.String()
		}
		return routes[i].NextHop.Less(routes[j].NextHop)
	})
	for _, r := range routes {
		fmt.Fprintf(&b, "ip route %s %s %s", r.Prefix.Addr(), bitsToMask(r.Prefix.Bits()), r.NextHop)
		if r.Distance != 0 {
			fmt.Fprintf(&b, " %d", r.Distance)
		}
		b.WriteString("\n")
	}
	if len(routes) > 0 {
		b.WriteString("!\n")
	}

	if d.DefaultGateway.IsValid() {
		fmt.Fprintf(&b, "ip default-gateway %s\n!\n", d.DefaultGateway)
	}

	if o := d.OSPF; o != nil {
		fmt.Fprintf(&b, "router ospf %d\n", o.ProcessID)
		if o.RouterID.IsValid() {
			fmt.Fprintf(&b, " router-id %s\n", o.RouterID)
		}
		for _, n := range o.Networks {
			fmt.Fprintf(&b, " network %s %s area %d\n", n.Prefix.Addr(), bitsToWildcard(n.Prefix.Bits()), n.Area)
		}
		for _, r := range o.Ranges {
			fmt.Fprintf(&b, " area %d range %s %s\n", r.Area, r.Prefix.Masked().Addr(), bitsToMask(r.Prefix.Bits()))
		}
		var passive []string
		for name, on := range o.Passive {
			if on {
				passive = append(passive, name)
			}
		}
		sort.Strings(passive)
		for _, name := range passive {
			fmt.Fprintf(&b, " passive-interface %s\n", name)
		}
		b.WriteString("!\n")
	}
	if g := d.BGP; g != nil {
		fmt.Fprintf(&b, "router bgp %d\n", g.LocalAS)
		if g.RouterID.IsValid() {
			fmt.Fprintf(&b, " bgp router-id %s\n", g.RouterID)
		}
		for _, nb := range g.Neighbors {
			fmt.Fprintf(&b, " neighbor %s remote-as %d\n", nb.Addr, nb.RemoteAS)
		}
		for _, net := range g.Networks {
			fmt.Fprintf(&b, " network %s mask %s\n", net.Addr(), bitsToMask(net.Bits()))
		}
		if g.RedistributeConnected {
			b.WriteString(" redistribute connected\n")
		}
		b.WriteString("!\n")
	}
	b.WriteString("end\n")
	// "end" is cosmetic; Parse treats it as unknown, so strip it on input.
	return strings.Replace(b.String(), "end\n", "! end\n", 1)
}

func sortedSecretKinds(d *netmodel.Device) []string {
	kinds := make([]string, 0, len(d.Secrets))
	for k := range d.Secrets {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

func printInterface(b *strings.Builder, itf *netmodel.Interface) {
	fmt.Fprintf(b, "interface %s\n", itf.Name)
	if itf.Description != "" {
		fmt.Fprintf(b, " description %s\n", itf.Description)
	}
	switch itf.Mode {
	case netmodel.Access:
		fmt.Fprintf(b, " switchport mode access\n")
		if itf.AccessVLAN != 0 {
			fmt.Fprintf(b, " switchport access vlan %d\n", itf.AccessVLAN)
		}
	case netmodel.Trunk:
		fmt.Fprintf(b, " switchport mode trunk\n")
		if len(itf.TrunkVLANs) > 0 {
			strs := make([]string, len(itf.TrunkVLANs))
			for i, v := range itf.TrunkVLANs {
				strs[i] = fmt.Sprintf("%d", v)
			}
			fmt.Fprintf(b, " switchport trunk allowed vlan %s\n", strings.Join(strs, ","))
		}
	}
	if itf.HasAddr() {
		fmt.Fprintf(b, " ip address %s %s\n", itf.Addr.Addr(), bitsToMask(itf.Addr.Bits()))
	}
	if itf.OSPFCost != 0 {
		fmt.Fprintf(b, " ip ospf cost %d\n", itf.OSPFCost)
	}
	if itf.ACLIn != "" {
		fmt.Fprintf(b, " ip access-group %s in\n", itf.ACLIn)
	}
	if itf.ACLOut != "" {
		fmt.Fprintf(b, " ip access-group %s out\n", itf.ACLOut)
	}
	if itf.Shutdown {
		fmt.Fprintf(b, " shutdown\n")
	} else {
		fmt.Fprintf(b, " no shutdown\n")
	}
	b.WriteString("!\n")
}

// FormatACLEntry renders one ACL entry in IOS syntax.
func FormatACLEntry(e *netmodel.ACLEntry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d %s %s", e.Seq, e.Action, e.Proto)
	writeSpec := func(pfx netip.Prefix, port uint16) {
		switch {
		case !pfx.IsValid():
			b.WriteString(" any")
		case pfx.Bits() == 32:
			fmt.Fprintf(&b, " host %s", pfx.Addr())
		default:
			fmt.Fprintf(&b, " %s %s", pfx.Masked().Addr(), bitsToWildcard(pfx.Bits()))
		}
		if port != 0 {
			fmt.Fprintf(&b, " eq %d", port)
		}
	}
	writeSpec(e.Src, e.SrcPort)
	writeSpec(e.Dst, e.DstPort)
	return b.String()
}

// CountLines returns the number of configuration lines (non-blank, non-"!")
// in the text, the unit used by Table 1's "lines of configs" column.
func CountLines(text string) int {
	n := 0
	for _, line := range strings.Split(text, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "!") {
			continue
		}
		n++
	}
	return n
}

// Sanitize returns a copy of the device with secret material removed,
// applied to every device config before it enters the twin network.
func Sanitize(d *netmodel.Device) *netmodel.Device {
	c := d.Clone()
	for k := range c.Secrets {
		c.Secrets[k] = "<redacted>"
	}
	return c
}
