package config

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser never panics and that everything it accepts
// survives a Print/Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(sampleRouter)
	f.Add(sampleBGPRouter)
	f.Add("hostname x\n")
	f.Add("interface Gi0/0\n ip address 10.0.0.1 255.0.0.0\n")
	f.Add("ip access-list extended A\n 10 permit tcp any host 1.2.3.4 eq 80\n")
	f.Add("router ospf 1\n network 10.0.0.0 0.255.255.255 area 0\n")
	f.Add("router bgp 65001\n neighbor 1.2.3.4 remote-as 65002\n")
	f.Add("vlan 10\n name users\n")
	f.Add("! kind: host\nip default-gateway 10.0.0.1\n")
	f.Add("ip route 0.0.0.0 0.0.0.0 10.0.0.1 200\n")
	f.Add("!\n \n\t\n")
	f.Add("interface\n")
	f.Add(" orphan indent\n")

	f.Fuzz(func(t *testing.T, text string) {
		d, err := Parse("fuzz", text)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted configs must round-trip semantically.
		printed := Print(d)
		d2, err := Parse("fuzz", printed)
		if err != nil {
			t.Fatalf("re-parse of printed config failed: %v\ninput: %q\nprinted:\n%s", err, text, printed)
		}
		// And printing must be canonical (fixed point after one cycle).
		if printed2 := Print(d2); printed2 != printed {
			t.Fatalf("printing not canonical for input %q", text)
		}
	})
}

// FuzzParseACLEntry checks the shared ACL entry grammar in isolation.
func FuzzParseACLEntry(f *testing.F) {
	f.Add("10 permit ip any any")
	f.Add("20 deny tcp 10.0.0.0 0.0.0.255 eq 80 host 1.2.3.4 eq 443")
	f.Add("30 permit udp host 8.8.8.8 eq 53 any")
	f.Add("bogus")
	f.Fuzz(func(t *testing.T, line string) {
		e, err := ParseACLEntry(strings.Fields(line))
		if err != nil {
			return
		}
		// Round trip through the formatter.
		e2, err := ParseACLEntry(strings.Fields(FormatACLEntry(&e)))
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", FormatACLEntry(&e), err)
		}
		if e != e2 {
			t.Fatalf("ACL entry round trip: %+v vs %+v", e, e2)
		}
	})
}
