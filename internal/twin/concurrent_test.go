package twin

import (
	"strings"
	"sync"
	"testing"

	"heimdall/internal/audit"
)

// TestTwinConcurrentExec hammers one twin from many goroutines at once:
// mixed read commands (snapshot-backed diagnostics), write commands
// (interface toggles, ACL edits), diff extraction and snapshot reads all
// race on the shared emulation layer. Run under -race this pins the
// twin-level serialization added for the service layer; without the
// twin mutex this test fails immediately on the console environment's
// snapshot cache.
func TestTwinConcurrentExec(t *testing.T) {
	trail := audit.NewTrail([]byte("conc"))
	tw, err := New(Config{
		Ticket: "T-CONC", Technician: "many",
		Production: prodNet(), Spec: allowAllSpec(), Trail: trail,
	})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev := []string{"r1", "r2", "r3", "r4"}[g%4]
			sess, err := tw.OpenConsole(dev)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < iters; i++ {
				switch (g + i) % 4 {
				case 0:
					if _, err := sess.Exec("show ip route"); err != nil {
						errs <- err
						return
					}
				case 1:
					// Write + revert: toggles the emulation layer and
					// invalidates the cached snapshot under contention.
					if _, err := sess.Exec("interface Gi0/1 shutdown"); err != nil {
						errs <- err
						return
					}
					if _, err := sess.Exec("interface Gi0/1 no shutdown"); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := sess.Exec("show running-config"); err != nil {
						errs <- err
						return
					}
					_ = tw.Changes()
				case 3:
					_ = tw.Snapshot()
					_ = tw.VisibleDevices()
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The hash chain must survive the interleaving intact, and every
	// command entry must still carry the twin's ticket identity.
	if err := trail.Verify(); err != nil {
		t.Fatalf("audit chain broken after concurrent exec: %v", err)
	}
	for _, e := range trail.Entries() {
		if e.Ticket != "T-CONC" {
			t.Fatalf("audit entry with foreign ticket %q", e.Ticket)
		}
	}
	// No stuck writes: all toggles reverted, so the twin has no diff.
	if ch := tw.Changes(); len(ch) != 0 {
		var b strings.Builder
		for _, c := range ch {
			b.WriteString(c.String() + "; ")
		}
		t.Fatalf("expected clean twin after balanced toggles, got %d changes: %s", len(ch), b.String())
	}
}
