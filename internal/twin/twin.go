// Package twin implements Heimdall's twin network (paper §4.2): an
// isolated, emulated copy of the production network a technician works on
// instead of the production network itself.
//
// The twin decouples the traditional monolithic emulator into:
//
//   - an emulation layer: a full-fidelity, sanitized clone of every device,
//     so faults reproduce exactly (security comes from mediation, not from
//     omitting devices that might be the root cause);
//   - a presentation layer: the topology view and consoles exposed to the
//     technician, restricted to a task-driven slice of devices relevant to
//     the ticket;
//   - a reference monitor between them that mediates every command against
//     the ticket's Privilegemsp and records every decision in the audit
//     trail.
package twin

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"heimdall/internal/audit"
	"heimdall/internal/config"
	"heimdall/internal/console"
	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
	"heimdall/internal/telemetry"
)

// Config assembles a twin network for one ticket.
type Config struct {
	Ticket     string
	Technician string
	// Production is the network being mimicked; the twin never mutates it.
	Production *netmodel.Network
	// Spec is the ticket's Privilegemsp enforced by the reference monitor.
	Spec *privilege.Spec
	// Slice is the set of devices visible in the presentation layer.
	// Compute it with ComputeSlice, or pass nil to expose everything
	// (the "All" baseline of the evaluation).
	Slice map[string]bool
	// Trail receives reference-monitor decisions; nil disables auditing.
	Trail *audit.Trail
	// Meter receives reference-monitor metrics (commands mediated,
	// allow/deny decisions per action class, mediation latency); nil
	// means the no-op meter.
	Meter telemetry.Meter
}

// Twin is one instantiated twin network.
type Twin struct {
	ticket     string
	technician string
	spec       *privilege.Spec
	// compiled caches the trie form of spec so the reference monitor
	// checks mediated commands without rescanning the rule list. Callers
	// may extend a ticket's privileges by appending rules (the core engine
	// does), so the cache is keyed by rule count and rebuilt when it grows.
	compiled atomic.Pointer[compiledSpec]
	baseline *netmodel.Network // sanitized clone kept pristine for diffing
	emul     *netmodel.Network // the mutable emulation layer
	slice    map[string]bool   // nil means every device is visible
	env      *console.Env
	trail    *audit.Trail
	meter    telemetry.Meter

	// mu serializes everything that touches the emulation layer or the
	// console environment's snapshot cache: command execution, diffing,
	// and snapshot reads. A twin is shared by every session opened on it
	// (one technician may hold consoles on several devices, and the
	// service layer multiplexes API calls onto the same twin), so the
	// emulation layer itself must be safe for concurrent use.
	mu sync.Mutex
}

// New builds the twin: the emulation layer is a sanitized deep copy of
// production (secrets redacted), and a second pristine copy is retained as
// the diff baseline.
func New(cfg Config) (*Twin, error) {
	if cfg.Production == nil {
		return nil, fmt.Errorf("twin: nil production network")
	}
	if cfg.Spec == nil {
		return nil, fmt.Errorf("twin: nil Privilegemsp")
	}
	sanitized := cfg.Production.Clone()
	for name, d := range sanitized.Devices {
		sanitized.Devices[name] = config.Sanitize(d)
	}
	meter := cfg.Meter
	if meter == nil {
		meter = telemetry.Nop()
	}
	tw := &Twin{
		ticket:     cfg.Ticket,
		technician: cfg.Technician,
		spec:       cfg.Spec,
		baseline:   sanitized,
		emul:       sanitized.Clone(),
		slice:      cfg.Slice,
		trail:      cfg.Trail,
		meter:      meter,
	}
	tw.env = console.NewEnv(tw.emul)
	// Technician consoles are the emulation layer's only writers (Exec
	// serializes under tw.mu), so post-write snapshots can derive
	// incrementally from the previous one instead of recomputing the
	// dataplane from scratch — the dominant cost of diagnosis scripts
	// that alternate fixes with reachability checks.
	tw.env.EnableIncremental()
	if cfg.Meter != nil {
		tw.env.Meter = cfg.Meter
	}
	tw.log(audit.KindSession, fmt.Sprintf("twin created (%d devices, %d visible)",
		len(tw.emul.Devices), len(tw.VisibleDevices())), true)
	return tw, nil
}

// log appends to the audit trail when one is attached.
func (tw *Twin) log(kind audit.Kind, detail string, allowed bool) {
	if tw.trail != nil {
		tw.trail.Append(tw.ticket, tw.technician, kind, detail, allowed)
	}
}

// VisibleDevices returns the presentation-layer topology: the devices the
// technician can see and open consoles on, sorted.
func (tw *Twin) VisibleDevices() []string {
	if tw.slice == nil {
		return tw.emul.DeviceNames()
	}
	var out []string
	for name := range tw.slice {
		if tw.emul.Devices[name] != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Visible reports whether a device is inside the presentation slice.
func (tw *Twin) Visible(device string) bool {
	if tw.slice == nil {
		return tw.emul.Devices[device] != nil
	}
	return tw.slice[device] && tw.emul.Devices[device] != nil
}

// Network exposes the emulation layer, used by the enforcer for diffing
// and by tests; technicians only ever interact through sessions.
func (tw *Twin) Network() *netmodel.Network { return tw.emul }

// Baseline returns the pristine sanitized copy the twin started from.
func (tw *Twin) Baseline() *netmodel.Network { return tw.baseline }

// Snapshot returns the twin's current dataplane snapshot.
func (tw *Twin) Snapshot() *dataplane.Snapshot {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.env.Snapshot()
}

// Changes computes the semantic configuration diff between the twin's
// baseline and its current state: exactly what the technician changed.
func (tw *Twin) Changes() []config.Change {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return config.DiffNetwork(tw.baseline, tw.emul)
}

// Session is a mediated console on one visible device.
type Session struct {
	twin *Twin
	con  *console.Console
}

// OpenConsole opens a session on a device. Devices outside the slice do
// not exist as far as the presentation layer is concerned.
func (tw *Twin) OpenConsole(device string) (*Session, error) {
	if !tw.Visible(device) {
		tw.log(audit.KindDecision, fmt.Sprintf("deny console on %s (outside slice)", device), false)
		tw.decision("deny", "session")
		return nil, fmt.Errorf("twin: no such device %q", device)
	}
	tw.log(audit.KindSession, "console opened on "+device, true)
	tw.decision("allow", "session")
	return &Session{twin: tw, con: console.New(device, tw.env)}, nil
}

// decision counts one reference-monitor verdict by action class.
func (tw *Twin) decision(verdict, class string) {
	tw.meter.Counter("heimdall_monitor_decisions_total",
		telemetry.L("decision", verdict), telemetry.L("class", class)).Inc()
}

// actionClass maps a console action ("config.interface.set") to its
// class ("config") to bound decision-counter cardinality.
func actionClass(action string) string {
	if i := strings.IndexByte(action, '.'); i > 0 {
		return action[:i]
	}
	return action
}

// Device returns the session's device name.
func (s *Session) Device() string { return s.con.Device() }

// ErrDenied is returned (wrapped) when the reference monitor blocks a
// command.
type ErrDenied struct {
	Action   string
	Resource string
}

// Error implements the error interface.
func (e *ErrDenied) Error() string {
	return fmt.Sprintf("twin: permission denied: %s on %s", e.Action, e.Resource)
}

// Exec runs one command line through the reference monitor: parse,
// privilege check, audit, then execute in the emulation layer.
func (s *Session) Exec(line string) (string, error) {
	tw := s.twin
	// One command at a time per twin: parse, decision, audit and execution
	// form one serialized critical section, so concurrent sessions can
	// never interleave half-applied configuration mutations or observe a
	// snapshot mid-invalidation, and the audit trail's command/decision
	// ordering matches the execution order.
	tw.mu.Lock()
	defer tw.mu.Unlock()
	start := time.Now()
	tw.meter.Counter("heimdall_monitor_commands_total").Inc()
	cmd, err := s.con.Parse(line)
	if err != nil {
		tw.log(audit.KindCommand, fmt.Sprintf("[%s] %s (parse error)", s.Device(), line), false)
		tw.decision("deny", "parse-error")
		return "", err
	}
	tw.log(audit.KindCommand, fmt.Sprintf("[%s] %s", s.Device(), line), true)
	if !tw.allows(cmd.Action, cmd.Resource) {
		tw.log(audit.KindDecision, fmt.Sprintf("deny %s on %s", cmd.Action, cmd.Resource), false)
		tw.decision("deny", actionClass(cmd.Action))
		tw.observeMediation(start)
		return "", &ErrDenied{Action: cmd.Action, Resource: cmd.Resource}
	}
	tw.log(audit.KindDecision, fmt.Sprintf("allow %s on %s", cmd.Action, cmd.Resource), true)
	tw.decision("allow", actionClass(cmd.Action))
	// Mediation latency is the monitor's own cost: parse + privilege
	// check + audit, before the command touches the emulation layer.
	tw.observeMediation(start)
	out, err := s.con.Execute(cmd)
	tw.meter.Histogram("heimdall_monitor_exec_seconds", telemetry.LatencyBuckets).
		ObserveDuration(time.Since(start))
	if err != nil {
		tw.log(audit.KindCommand, fmt.Sprintf("[%s] %s failed: %v", s.Device(), line, err), true)
		return "", err
	}
	return out, nil
}

// compiledSpec pairs a compiled rule trie with the rule count it was built
// from, so the mediation path can detect appended rules.
type compiledSpec struct {
	nrules int
	c      *privilege.CompiledSpec
}

// allows evaluates the mediation decision through the compiled spec,
// recompiling when the rule list grew since the last command. The cache is
// an atomic pointer, so concurrent sessions stay race-free (a concurrent
// append at worst costs one extra compile).
func (tw *Twin) allows(action, resource string) bool {
	n := len(tw.spec.Rules)
	cs := tw.compiled.Load()
	if cs == nil || cs.nrules != n {
		cs = &compiledSpec{nrules: n, c: tw.spec.Compile()}
		tw.compiled.Store(cs)
	}
	return cs.c.Allows(action, resource)
}

func (tw *Twin) observeMediation(start time.Time) {
	tw.meter.Histogram("heimdall_monitor_mediation_seconds", telemetry.LatencyBuckets).
		ObserveDuration(time.Since(start))
}
