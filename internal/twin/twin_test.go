package twin

import (
	"errors"
	"net/netip"
	"strings"
	"testing"

	"heimdall/internal/audit"
	"heimdall/internal/config"
	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
	"heimdall/internal/telemetry"
)

// prodNet: h1 - r1 - r2 - r3 - h2 with an extra stub router r4 and a
// sensitive host h3 hanging off r4 (outside the h1<->h2 task).
func prodNet() *netmodel.Network {
	n := netmodel.NewNetwork("prod")
	for _, r := range []string{"r1", "r2", "r3", "r4"} {
		n.AddDevice(r, netmodel.Router)
	}
	for _, h := range []string{"h1", "h2", "h3"} {
		n.AddDevice(h, netmodel.Host)
	}
	n.MustConnect("h1", "eth0", "r1", "Gi0/0")
	n.MustConnect("r1", "Gi0/1", "r2", "Gi0/0")
	n.MustConnect("r2", "Gi0/1", "r3", "Gi0/0")
	n.MustConnect("r3", "Gi0/1", "h2", "eth0")
	n.MustConnect("r2", "Gi0/2", "r4", "Gi0/0")
	n.MustConnect("r4", "Gi0/1", "h3", "eth0")

	set := func(dev, itf, addr string) {
		n.Device(dev).Interface(itf).Addr = netip.MustParsePrefix(addr)
	}
	set("h1", "eth0", "10.1.0.10/24")
	n.Device("h1").DefaultGateway = netip.MustParseAddr("10.1.0.1")
	set("r1", "Gi0/0", "10.1.0.1/24")
	set("r1", "Gi0/1", "10.0.12.1/30")
	set("r2", "Gi0/0", "10.0.12.2/30")
	set("r2", "Gi0/1", "10.0.23.1/30")
	set("r3", "Gi0/0", "10.0.23.2/30")
	set("r3", "Gi0/1", "10.2.0.1/24")
	set("h2", "eth0", "10.2.0.10/24")
	n.Device("h2").DefaultGateway = netip.MustParseAddr("10.2.0.1")
	set("r2", "Gi0/2", "10.0.24.1/30")
	set("r4", "Gi0/0", "10.0.24.2/30")
	set("r4", "Gi0/1", "10.3.0.1/24")
	set("h3", "eth0", "10.3.0.10/24")
	n.Device("h3").DefaultGateway = netip.MustParseAddr("10.3.0.1")

	for _, r := range []string{"r1", "r2", "r3", "r4"} {
		n.Device(r).OSPF = &netmodel.OSPFProcess{ProcessID: 1,
			Networks: []netmodel.OSPFNetwork{{Prefix: netip.MustParsePrefix("10.0.0.0/8"), Area: 0}},
			Passive:  map[string]bool{}}
	}
	n.Device("r1").Secrets["enable"] = "prod-secret"
	return n
}

func allowAllSpec() *privilege.Spec {
	return &privilege.Spec{Ticket: "T1", Technician: "alice", Rules: []privilege.Rule{
		{Effect: privilege.AllowEffect, Action: "*", Resource: "*"},
	}}
}

func TestTwinIsolatesProduction(t *testing.T) {
	prod := prodNet()
	tw, err := New(Config{Ticket: "T1", Technician: "alice", Production: prod, Spec: allowAllSpec()})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tw.OpenConsole("r2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("interface Gi0/1 shutdown"); err != nil {
		t.Fatal(err)
	}
	if prod.Device("r2").Interface("Gi0/1").Shutdown {
		t.Fatal("twin change leaked into production")
	}
	if !tw.Network().Device("r2").Interface("Gi0/1").Shutdown {
		t.Fatal("twin change not applied to emulation layer")
	}
}

func TestTwinSanitizesSecrets(t *testing.T) {
	tw, _ := New(Config{Ticket: "T1", Technician: "alice", Production: prodNet(), Spec: allowAllSpec()})
	sess, _ := tw.OpenConsole("r1")
	out, err := sess.Exec("show running-config")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "prod-secret") {
		t.Fatal("twin console leaks production secrets")
	}
	if !strings.Contains(out, "<redacted>") {
		t.Fatal("expected redaction marker in running config")
	}
}

func TestReferenceMonitorEnforcesPrivileges(t *testing.T) {
	spec := &privilege.Spec{Ticket: "T1", Technician: "alice", Rules: []privilege.Rule{
		{Effect: privilege.AllowEffect, Action: "show.*", Resource: "device:*"},
		{Effect: privilege.AllowEffect, Action: "diag.*", Resource: "device:*"},
		{Effect: privilege.AllowEffect, Action: "config.acl.*", Resource: "device:r3"},
	}}
	trail := audit.NewTrail([]byte("k"))
	tw, err := New(Config{Ticket: "T1", Technician: "alice", Production: prodNet(), Spec: spec, Trail: trail})
	if err != nil {
		t.Fatal(err)
	}

	r3, _ := tw.OpenConsole("r3")
	if _, err := r3.Exec("show ip route"); err != nil {
		t.Fatalf("allowed show failed: %v", err)
	}
	if _, err := r3.Exec("access-list EDGE 10 permit ip any any"); err != nil {
		t.Fatalf("allowed acl change failed: %v", err)
	}
	// Interface shutdown is not granted.
	_, err = r3.Exec("interface Gi0/1 shutdown")
	var denied *ErrDenied
	if !errors.As(err, &denied) {
		t.Fatalf("expected ErrDenied, got %v", err)
	}
	if denied.Action != "config.interface.set" {
		t.Fatalf("denied action = %s", denied.Action)
	}
	// ACL changes on another device are denied too.
	r1, _ := tw.OpenConsole("r1")
	if _, err := r1.Exec("access-list X 10 permit ip any any"); err == nil {
		t.Fatal("acl change on r1 should be denied")
	}

	// Every decision is on the audit trail.
	var denies, allows int
	for _, e := range trail.Entries() {
		if e.Kind == audit.KindDecision {
			if e.Allowed {
				allows++
			} else {
				denies++
			}
		}
	}
	if denies != 2 || allows < 2 {
		t.Fatalf("audit decisions: %d denies, %d allows", denies, allows)
	}
	if err := trail.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPresentationSliceHidesDevices(t *testing.T) {
	prod := prodNet()
	snap := dataplane.Compute(prod)
	slice := ComputeSlice(prod, snap, SliceTaskDriven, "h1", "h2", nil)
	tw, err := New(Config{Ticket: "T1", Technician: "alice", Production: prod,
		Spec: allowAllSpec(), Slice: slice})
	if err != nil {
		t.Fatal(err)
	}
	// Path devices are visible.
	for _, dev := range []string{"h1", "r1", "r2", "r3", "h2"} {
		if !tw.Visible(dev) {
			t.Errorf("%s should be visible", dev)
		}
	}
	// The stub router and sensitive host are not.
	for _, dev := range []string{"r4", "h3"} {
		if tw.Visible(dev) {
			t.Errorf("%s should be hidden", dev)
		}
		if _, err := tw.OpenConsole(dev); err == nil {
			t.Errorf("console on hidden %s should fail", dev)
		}
	}
	// But the hidden devices still exist in the emulation layer, so the
	// dataplane behaves faithfully.
	if tw.Network().Device("r4") == nil {
		t.Fatal("emulation layer must contain hidden devices")
	}
}

func TestSliceStrategies(t *testing.T) {
	prod := prodNet()
	snap := dataplane.Compute(prod)

	all := ComputeSlice(prod, snap, SliceAll, "h1", "h2", nil)
	if len(all) != len(prod.Devices) {
		t.Fatalf("All slice = %d devices, want %d", len(all), len(prod.Devices))
	}

	nb := ComputeSlice(prod, snap, SliceNeighbors, "h1", "h2", nil)
	// h1, h2 and their gateways r1, r3 — but not the middle router r2.
	for _, dev := range []string{"h1", "h2", "r1", "r3"} {
		if !nb[dev] {
			t.Errorf("Neighbor slice missing %s: %v", dev, nb)
		}
	}
	if nb["r2"] || nb["r4"] {
		t.Errorf("Neighbor slice too wide: %v", nb)
	}

	task := ComputeSlice(prod, snap, SliceTaskDriven, "h1", "h2", nil)
	for _, dev := range []string{"h1", "r1", "r2", "r3", "h2"} {
		if !task[dev] {
			t.Errorf("task slice missing %s: %v", dev, task)
		}
	}
	if task["r4"] || task["h3"] {
		t.Errorf("task slice includes irrelevant devices: %v", task)
	}

	// Suspects are always included.
	withSuspect := ComputeSlice(prod, snap, SliceTaskDriven, "h1", "h2", []string{"r4"})
	if !withSuspect["r4"] {
		t.Error("suspect not included")
	}

	// Strategy names match the paper's figures.
	if SliceAll.String() != "All" || SliceNeighbors.String() != "Neighbor" || SliceTaskDriven.String() != "Heimdall" {
		t.Error("strategy names wrong")
	}
}

func TestChangesDiffBaseline(t *testing.T) {
	tw, _ := New(Config{Ticket: "T1", Technician: "alice", Production: prodNet(), Spec: allowAllSpec()})
	if got := tw.Changes(); len(got) != 0 {
		t.Fatalf("fresh twin has changes: %v", got)
	}
	sess, _ := tw.OpenConsole("r2")
	if _, err := sess.Exec("access-list NEW 10 deny tcp any host 10.2.0.10 eq 80"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("interface Gi0/2 shutdown"); err != nil {
		t.Fatal(err)
	}
	changes := tw.Changes()
	if len(changes) != 2 {
		t.Fatalf("changes = %v", changes)
	}
	for _, c := range changes {
		if c.Device != "r2" {
			t.Errorf("change on wrong device: %v", c)
		}
	}
}

func TestTwinEndToEndDebugging(t *testing.T) {
	// Inject the paper's running example: an ACL on r2 denies h1->h2 web
	// traffic. The technician diagnoses with ping, inspects the ACL,
	// removes the bad entry, and the twin confirms the fix.
	prod := prodNet()
	r2 := prod.Device("r2")
	acl := r2.ACL("CORE", true)
	acl.InsertEntry(netmodel.ACLEntry{Seq: 10, Action: netmodel.Deny, Proto: netmodel.TCP,
		Dst: netip.MustParsePrefix("10.2.0.10/32"), DstPort: 80})
	acl.InsertEntry(netmodel.ACLEntry{Seq: 20, Action: netmodel.Permit})
	r2.Interface("Gi0/0").ACLIn = "CORE"

	snap := dataplane.Compute(prod)
	slice := ComputeSlice(prod, snap, SliceTaskDriven, "h1", "h2", nil)
	spec, err := privilege.Generate(privilege.TemplateInput{
		Ticket: "T9", Technician: "alice", Kind: privilege.TaskACL,
		Scope: keys(slice), Suspects: []string{"r1", "r2", "r3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tw, err := New(Config{Ticket: "T9", Technician: "alice", Production: prod, Spec: spec, Slice: slice})
	if err != nil {
		t.Fatal(err)
	}

	h1, _ := tw.OpenConsole("h1")
	out, err := h1.Exec("ping h2 tcp 80")
	if err != nil || !strings.Contains(out, "failed") {
		t.Fatalf("symptom should reproduce in twin: %q %v", out, err)
	}
	r2c, _ := tw.OpenConsole("r2")
	out, err = r2c.Exec("show access-lists CORE")
	if err != nil || !strings.Contains(out, "deny tcp any host 10.2.0.10 eq 80") {
		t.Fatalf("diagnosis output: %q %v", out, err)
	}
	if _, err := r2c.Exec("no access-list CORE 10"); err != nil {
		t.Fatalf("fix rejected: %v", err)
	}
	out, _ = h1.Exec("ping h2 tcp 80")
	if !strings.Contains(out, "success") {
		t.Fatalf("fix should resolve symptom in twin: %q", out)
	}
	changes := tw.Changes()
	if len(changes) != 1 || changes[0].Op != config.OpRemoveACLEntry {
		t.Fatalf("changes = %v", changes)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Spec: allowAllSpec()}); err == nil {
		t.Error("nil production accepted")
	}
	if _, err := New(Config{Production: prodNet()}); err == nil {
		t.Error("nil spec accepted")
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestTwinMetrics(t *testing.T) {
	spec := &privilege.Spec{Ticket: "T1", Technician: "alice", Rules: []privilege.Rule{
		{Effect: privilege.AllowEffect, Action: "show.*", Resource: "device:*"},
	}}
	reg := telemetry.NewRegistry()
	tw, err := New(Config{Ticket: "T1", Technician: "alice", Production: prodNet(),
		Spec: spec, Meter: reg})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tw.OpenConsole("r1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("show ip route"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("show interfaces"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("interface Gi0/1 shutdown"); err == nil {
		t.Fatal("config command should be denied")
	}
	if _, err := sess.Exec("not a command"); err == nil {
		t.Fatal("unparseable command should fail")
	}

	if got := reg.CounterValue("heimdall_monitor_commands_total"); got != 4 {
		t.Errorf("commands_total = %v, want 4", got)
	}
	if got := reg.CounterValue("heimdall_monitor_decisions_total",
		telemetry.L("decision", "allow"), telemetry.L("class", "show")); got != 2 {
		t.Errorf("allow show decisions = %v, want 2", got)
	}
	if got := reg.CounterValue("heimdall_monitor_decisions_total",
		telemetry.L("decision", "deny"), telemetry.L("class", "config")); got != 1 {
		t.Errorf("deny config decisions = %v, want 1", got)
	}
	if got := reg.CounterValue("heimdall_monitor_decisions_total",
		telemetry.L("decision", "deny"), telemetry.L("class", "parse-error")); got != 1 {
		t.Errorf("deny parse-error decisions = %v, want 1", got)
	}
	// Mediation latency is observed for every checked command (allow and
	// deny); exec latency only for allowed ones.
	if got := reg.HistogramCount("heimdall_monitor_mediation_seconds"); got != 3 {
		t.Errorf("mediation_seconds count = %v, want 3", got)
	}
	if got := reg.HistogramCount("heimdall_monitor_exec_seconds"); got != 2 {
		t.Errorf("exec_seconds count = %v, want 2", got)
	}
	// Console dispatch counts the allowed commands by action.
	if got := reg.CounterValue("heimdall_console_dispatch_total",
		telemetry.L("action", "show.ip.route"), telemetry.L("write", "read")); got != 1 {
		t.Errorf("console dispatch show.ip.route = %v, want 1", got)
	}
}
