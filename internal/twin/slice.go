package twin

import (
	"heimdall/internal/dataplane"
	"heimdall/internal/netmodel"
)

// SliceStrategy selects how the presentation slice is computed; the
// evaluation compares Heimdall's task-driven strategy against the two
// strawman extremes of Figure 5.
type SliceStrategy int

const (
	// SliceAll exposes every device (Figure 5b: clone everything).
	SliceAll SliceStrategy = iota
	// SliceNeighbors exposes the affected endpoints and their direct
	// topological neighbours (Figure 5c).
	SliceNeighbors
	// SliceTaskDriven is Heimdall's strategy: every device that can carry
	// the affected traffic, plus dependency closure (Figure 5d).
	SliceTaskDriven
)

// String names the strategy as used in the paper's figures.
func (s SliceStrategy) String() string {
	switch s {
	case SliceAll:
		return "All"
	case SliceNeighbors:
		return "Neighbor"
	case SliceTaskDriven:
		return "Heimdall"
	}
	return "?"
}

// ComputeSlice returns the device set a strategy exposes for a ticket
// affecting traffic between srcHost and dstHost. suspects are always
// included (the admin named them in the ticket).
//
// The task-driven slice is the union of:
//   - all devices on any near-shortest topological path between the
//     endpoints (slack 1 covers backup paths the control plane may fail
//     over to);
//   - the devices on the *current* forwarding paths in both directions
//     (which, under a misconfiguration, may deviate from topology);
//   - L2 dependency closure: switches whose VLAN fabric carries either
//     endpoint's subnet;
//   - the named suspects.
func ComputeSlice(n *netmodel.Network, snap *dataplane.Snapshot, strategy SliceStrategy,
	srcHost, dstHost string, suspects []string) map[string]bool {

	out := make(map[string]bool)
	switch strategy {
	case SliceAll:
		for _, name := range n.DeviceNames() {
			out[name] = true
		}
		return out

	case SliceNeighbors:
		for _, ep := range []string{srcHost, dstHost} {
			if n.Devices[ep] == nil {
				continue
			}
			out[ep] = true
			for _, nb := range n.Neighbors(ep) {
				out[nb] = true
			}
		}

	case SliceTaskDriven:
		for dev := range n.PathsBetween(srcHost, dstHost, 1) {
			out[dev] = true
		}
		// Current forwarding paths (both directions) under the fault.
		if snap != nil {
			for _, pair := range [][2]string{{srcHost, dstHost}, {dstHost, srcHost}} {
				tr, err := snap.Reach(pair[0], pair[1], netmodel.ICMP, 0)
				if err == nil {
					for _, hop := range tr.Hops {
						out[hop.Device] = true
					}
				}
			}
		}
		// L2 closure: switches adjacent (in the fabric sense) to any
		// endpoint interface of an already-included host.
		for _, host := range []string{srcHost, dstHost} {
			d := n.Devices[host]
			if d == nil {
				continue
			}
			for _, ifName := range d.InterfaceNames() {
				ep := netmodel.Endpoint{Device: host, Interface: ifName}
				if snap != nil {
					for _, adj := range snap.Adjacent(ep) {
						if sw := n.Devices[adj.Device]; sw != nil && sw.Kind == netmodel.Switch {
							out[adj.Device] = true
						}
					}
				}
				// Directly cabled switches participate even when the
				// misconfiguration has severed L3 adjacency.
				if link := n.LinkAt(host, ifName); link != nil {
					if other, ok := link.Other(host); ok {
						if sw := n.Devices[other.Device]; sw != nil && sw.Kind == netmodel.Switch {
							out[other.Device] = true
							// ...and the switches its fabric extends into.
							for _, peer := range n.Neighbors(other.Device) {
								if p := n.Devices[peer]; p != nil && p.Kind == netmodel.Switch {
									out[peer] = true
								}
							}
						}
					}
				}
			}
		}
	}

	for _, s := range suspects {
		if n.Devices[s] != nil {
			out[s] = true
		}
	}
	for _, ep := range []string{srcHost, dstHost} {
		if n.Devices[ep] != nil {
			out[ep] = true
		}
	}
	return out
}
