package service

import (
	"fmt"
	"strings"
	"testing"

	"heimdall/internal/core"
	"heimdall/internal/scenarios"
	"heimdall/internal/telemetry"
	"heimdall/internal/ticket"
)

// loadScale returns the acceptance scale — 50 tenants × 20 sessions =
// 1,000 concurrent technicians — shrunk under -race (5-10x slowdown) and
// -short so those runs stay fast while the plain run keeps the
// acceptance numbers.
func loadScale(t *testing.T) (tenants, perTenant int) {
	t.Helper()
	if RaceEnabled || testing.Short() {
		return 8, 5
	}
	return 50, 20
}

// TestLoadGeneratorAcceptance is the PR's acceptance test: the service
// sustains >= 1,000 concurrent scripted technician sessions across
// >= 50 tenants on the university+enterprise scenarios with zero
// mediation denials and zero cross-tenant audit/state leakage.
func TestLoadGeneratorAcceptance(t *testing.T) {
	tenants, per := loadScale(t)
	reg := telemetry.NewRegistry()
	svc := New(Config{Meter: reg, VerifyQueue: 4096, PlatformSeed: "loadgen"})
	defer svc.Close()

	rep, err := RunLoad(LoadConfig{
		Service:           svc,
		Tenants:           tenants,
		SessionsPerTenant: per,
		Reviews:           true,
		Commits:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())

	if rep.Sessions != tenants*per {
		t.Fatalf("sessions = %d, want %d", rep.Sessions, tenants*per)
	}
	if rep.Commands == 0 || rep.CmdsPerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", rep)
	}
	// Every technician replays the issue's prepared script inside their
	// ticket's privilege slice: the reference monitor must deny nothing.
	if rep.Denied != 0 {
		t.Fatalf("denied = %d, want 0", rep.Denied)
	}
	if rep.Commits != int64(tenants) {
		t.Fatalf("commits = %d, want one per tenant (%d)", rep.Commits, tenants)
	}
	if rep.P99Ms < rep.P50Ms {
		t.Fatalf("p99 %.3fms < p50 %.3fms", rep.P99Ms, rep.P50Ms)
	}

	// --- Zero cross-tenant leakage ---

	// 1. No device pointer is reachable from two tenants.
	owner := make(map[any]string)
	for _, ti := range svc.Tenants() {
		tn, err := svc.Tenant(ti.ID)
		if err != nil {
			t.Fatal(err)
		}
		for name, d := range tn.System().Production().Devices {
			if prev, ok := owner[d]; ok && prev != ti.ID {
				t.Fatalf("device %s aliased between tenants %s and %s", name, prev, ti.ID)
			}
			owner[d] = ti.ID
		}
	}

	// 2. Every audit record in tenant i's trail names a technician of
	// tenant i (technicians are globally unique: tech-<tenant>-<session>),
	// and every trail verifies end-to-end.
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("t-%03d", i)
		tn, err := svc.Tenant(id)
		if err != nil {
			t.Fatal(err)
		}
		trail := tn.System().Enforcer.Trail()
		if err := trail.Verify(); err != nil {
			t.Fatalf("tenant %s: audit trail broken: %v", id, err)
		}
		prefix := fmt.Sprintf("tech-%03d-", i)
		entries := trail.Entries()
		if len(entries) == 0 {
			t.Fatalf("tenant %s: empty audit trail", id)
		}
		for _, e := range entries {
			if e.Technician != "" && !strings.HasPrefix(e.Technician, prefix) {
				t.Fatalf("tenant %s: audit entry names foreign technician %q", id, e.Technician)
			}
		}
	}

	// 3. Per-tenant metric series stayed separate and account for every
	// mediated command.
	var metered float64
	for i := 0; i < tenants; i++ {
		metered += reg.CounterValue("heimdall_service_commands_total",
			telemetry.L("tenant", fmt.Sprintf("t-%03d", i)))
	}
	if int64(metered) != rep.Commands {
		t.Fatalf("per-tenant command counters sum to %v, want %d", metered, rep.Commands)
	}
	if got := reg.GaugeValue("heimdall_service_tenants"); int(got) != tenants {
		t.Fatalf("tenants gauge = %v, want %d", got, tenants)
	}
}

// TestMediationByteIdentical asserts the acceptance criterion that the
// service's mediated Exec path is byte-identical to driving
// twin.Session.Exec directly on an equivalently-seeded single-tenant
// deployment: the service adds lifecycle and metering around mediation
// without altering a single output byte.
func TestMediationByteIdentical(t *testing.T) {
	const seed = "byte-ident"

	// Service-side transcript.
	svc := New(Config{PlatformSeed: seed})
	defer svc.Close()
	if _, err := svc.CreateTenant("solo", "university"); err != nil {
		t.Fatal(err)
	}
	tn, err := svc.Tenant("solo")
	if err != nil {
		t.Fatal(err)
	}
	var issue *scenarios.Issue
	for i := range tn.ScenarioData().Issues {
		if tn.ScenarioData().Issues[i].Name == "acl" {
			issue = &tn.ScenarioData().Issues[i]
		}
	}
	if issue == nil {
		t.Fatal("university scenario lost its acl issue")
	}
	tk, err := svc.InjectIssue("solo", "acl", "reporter")
	if err != nil {
		t.Fatal(err)
	}
	info, err := svc.CreateSession("solo", "alice", tk.ID)
	if err != nil {
		t.Fatal(err)
	}
	var viaService []string
	for _, cmd := range issue.Script {
		out, err := svc.Exec("solo", info.Session, info.Token, cmd.Device, cmd.Line)
		if err != nil {
			t.Fatalf("service exec %q on %s: %v", cmd.Line, cmd.Device, err)
		}
		viaService = append(viaService, out)
	}

	// Direct-twin transcript: same scenario constructor, same platform
	// seed derivation, same ticket fields, same technician.
	scen := scenarios.University().Clone()
	sys, err := core.NewSystem(core.Options{
		Network:      scen.Network,
		Policies:     scen.Policies,
		Sensitive:    scen.Sensitive,
		PlatformSeed: seed + "/solo",
	})
	if err != nil {
		t.Fatal(err)
	}
	var ref *scenarios.Issue
	for i := range scen.Issues {
		if scen.Issues[i].Name == "acl" {
			ref = &scen.Issues[i]
		}
	}
	if err := ref.Fault.Inject(sys.Production()); err != nil {
		t.Fatal(err)
	}
	dtk := sys.Tickets.Create(ticket.Ticket{
		Summary: ref.Fault.Description, Kind: ref.Fault.Kind,
		SrcHost: ref.SrcHost, DstHost: ref.DstHost,
		Proto: ref.Proto, DstPort: ref.DstPort,
		Suspects:  []string{ref.Fault.RootCause},
		CreatedBy: "reporter",
	})
	eng, err := sys.StartWork(dtk.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	var viaTwin []string
	for _, cmd := range ref.Script {
		sess, err := eng.Console(cmd.Device)
		if err != nil {
			t.Fatalf("direct console %s: %v", cmd.Device, err)
		}
		out, err := sess.Exec(cmd.Line)
		if err != nil {
			t.Fatalf("direct exec %q on %s: %v", cmd.Line, cmd.Device, err)
		}
		viaTwin = append(viaTwin, out)
	}

	if len(viaService) != len(viaTwin) {
		t.Fatalf("transcript lengths differ: service %d, twin %d", len(viaService), len(viaTwin))
	}
	for i := range viaService {
		if viaService[i] != viaTwin[i] {
			t.Fatalf("output %d differs for %q on %s:\nservice: %q\ntwin:    %q",
				i, issue.Script[i].Line, issue.Script[i].Device, viaService[i], viaTwin[i])
		}
	}
}
