//go:build race

package service

// RaceEnabled reports whether the race detector is compiled in.
const RaceEnabled = true
