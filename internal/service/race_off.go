//go:build !race

package service

// RaceEnabled reports whether the race detector is compiled in; the
// full-scale load tests shrink under -race (5-10x slowdown) while the
// plain test run keeps the acceptance-scale numbers.
const RaceEnabled = false
