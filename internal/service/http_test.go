package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"heimdall/internal/telemetry"
)

// httpClient is a thin helper over the test server.
type httpClient struct {
	t   *testing.T
	srv *httptest.Server
}

func (c *httpClient) do(method, path, token string, body any) (int, []byte) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	if token != "" {
		req.Header.Set(TokenHeader, token)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, out
}

func (c *httpClient) doJSON(method, path, token string, body, out any) int {
	c.t.Helper()
	status, raw := c.do(method, path, token, body)
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			c.t.Fatalf("%s %s: bad JSON %q: %v", method, path, raw, err)
		}
	}
	return status
}

func TestHTTPWorkflow(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := New(Config{Meter: reg, PlatformSeed: "http-test"})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	c := &httpClient{t: t, srv: srv}

	// Onboard a tenant.
	var tenant TenantInfo
	if s := c.doJSON("POST", "/v1/tenants", "", map[string]string{"id": "acme", "scenario": "university"}, &tenant); s != http.StatusCreated {
		t.Fatalf("create tenant: status %d", s)
	}
	if tenant.Devices == 0 {
		t.Fatalf("tenant reports no devices: %+v", tenant)
	}
	// Duplicate onboarding conflicts.
	if s, _ := c.do("POST", "/v1/tenants", "", map[string]string{"id": "acme", "scenario": "university"}); s != http.StatusConflict {
		t.Fatalf("duplicate tenant: status %d, want 409", s)
	}
	// Unknown scenario.
	if s, _ := c.do("POST", "/v1/tenants", "", map[string]string{"id": "x", "scenario": "nope"}); s != http.StatusNotFound {
		t.Fatalf("unknown scenario: status %d, want 404", s)
	}

	// Inject a scripted issue — files the ticket.
	var tk struct {
		ID string `json:"id"`
	}
	if s := c.doJSON("POST", "/v1/tenants/acme/issues/acl", "", nil, &tk); s != http.StatusCreated {
		t.Fatalf("inject issue: status %d", s)
	}
	if tk.ID == "" {
		t.Fatal("injected issue returned no ticket ID")
	}

	// Open a session for the ticket.
	var info Info
	if s := c.doJSON("POST", "/v1/tenants/acme/sessions", "", map[string]string{"technician": "alice", "ticket": tk.ID}, &info); s != http.StatusCreated {
		t.Fatalf("create session: status %d", s)
	}
	if info.Token == "" || len(info.Slice) == 0 {
		t.Fatalf("session info incomplete: %+v", info)
	}
	sessPath := "/v1/tenants/acme/sessions/" + info.Session

	// Session listing withholds the token.
	var list []Info
	if s := c.doJSON("GET", "/v1/tenants/acme/sessions", "", nil, &list); s != http.StatusOK {
		t.Fatalf("list sessions: status %d", s)
	}
	if len(list) != 1 || list[0].Token != "" {
		t.Fatalf("session listing leaked the token: %+v", list)
	}

	// Attach needs the right token.
	if s, _ := c.do("GET", sessPath, "wrong-token", nil); s != http.StatusForbidden {
		t.Fatalf("bad-token attach: status %d, want 403", s)
	}
	if s := c.doJSON("GET", sessPath, info.Token, nil, &info); s != http.StatusOK {
		t.Fatalf("attach: status %d", s)
	}

	// Mediated exec inside the slice succeeds.
	var execOut struct {
		Output string `json:"output"`
	}
	if s := c.doJSON("POST", sessPath+"/exec", info.Token, map[string]string{"device": info.Slice[0], "line": "show ip route"}, &execOut); s != http.StatusOK {
		t.Fatalf("exec: status %d", s)
	}
	if execOut.Output == "" {
		t.Fatal("exec returned empty output")
	}

	// Privilege inspection shows the compiled rules and slice.
	var priv PrivilegeInfo
	if s := c.doJSON("GET", sessPath+"/privileges", info.Token, nil, &priv); s != http.StatusOK {
		t.Fatalf("privileges: status %d", s)
	}
	if priv.Ticket != tk.ID || len(priv.Rules) == 0 || len(priv.Slice) == 0 {
		t.Fatalf("privileges incomplete: %+v", priv)
	}

	// Run the scripted fix so there is something to review and commit.
	tn, err := svc.Tenant("acme")
	if err != nil {
		t.Fatal(err)
	}
	var script []struct{ Device, Line string }
	for _, is := range tn.ScenarioData().Issues {
		if is.Name == "acl" {
			for _, cmd := range is.Script {
				script = append(script, struct{ Device, Line string }{cmd.Device, cmd.Line})
			}
		}
	}
	if len(script) == 0 {
		t.Fatal("acl issue has no script")
	}
	for _, cmd := range script {
		if s, out := c.do("POST", sessPath+"/exec", info.Token, map[string]string{"device": cmd.Device, "line": cmd.Line}); s != http.StatusOK {
			t.Fatalf("scripted exec %q on %s: status %d: %s", cmd.Line, cmd.Device, s, out)
		}
	}

	// Review (no production mutation), then commit.
	var rev ReviewResult
	if s := c.doJSON("POST", sessPath+"/review", info.Token, nil, &rev); s != http.StatusOK {
		t.Fatalf("review: status %d", s)
	}
	if !rev.Accepted || rev.Committed {
		t.Fatalf("review = %+v, want accepted and not committed", rev)
	}
	var com ReviewResult
	if s := c.doJSON("POST", sessPath+"/commit", info.Token, nil, &com); s != http.StatusOK {
		t.Fatalf("commit: status %d", s)
	}
	if !com.Accepted || !com.Committed {
		t.Fatalf("commit = %+v, want accepted and committed", com)
	}

	// Close; double close conflicts; exec after close conflicts.
	if s, _ := c.do("DELETE", sessPath, info.Token, nil); s != http.StatusOK {
		t.Fatalf("close: status %d", s)
	}
	if s, _ := c.do("DELETE", sessPath, info.Token, nil); s != http.StatusConflict {
		t.Fatalf("double close: status %d, want 409", s)
	}
	if s, _ := c.do("POST", sessPath+"/exec", info.Token, map[string]string{"device": info.Slice[0], "line": "show ip route"}); s != http.StatusConflict {
		t.Fatalf("exec after close: status %d, want 409", s)
	}

	// Metrics exposition carries the per-tenant series.
	s, raw := c.do("GET", "/metrics", "", nil)
	if s != http.StatusOK {
		t.Fatalf("metrics: status %d", s)
	}
	metrics := string(raw)
	for _, want := range []string{
		`heimdall_service_commands_total{tenant="acme"}`,
		`heimdall_service_sessions_total{tenant="acme"}`,
		`heimdall_service_mediation_seconds`,
		"heimdall_service_queue_depth",
		"heimdall_service_tenants",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s", want)
		}
	}

	// Health.
	if s, _ := c.do("GET", "/healthz", "", nil); s != http.StatusOK {
		t.Fatalf("healthz: status %d", s)
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	vc := telemetry.NewVirtualClock(time.Unix(1700000000, 0))
	svc := New(Config{Clock: vc.Now, IdleTimeout: time.Minute})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	c := &httpClient{t: t, srv: srv}

	// Unknown tenant and session are 404.
	if s, _ := c.do("GET", "/v1/tenants/ghost", "", nil); s != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d, want 404", s)
	}
	if s, _ := c.do("POST", "/v1/tenants", "", map[string]string{"id": "acme", "scenario": "enterprise"}); s != http.StatusCreated {
		t.Fatal("create tenant failed")
	}
	if s, _ := c.do("GET", "/v1/tenants/acme/sessions/S-9999", "tok", nil); s != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", s)
	}
	// Bad request body is 400.
	req, _ := http.NewRequest("POST", srv.URL+"/v1/tenants", strings.NewReader("{not json"))
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d, want 400", resp.StatusCode)
	}

	// Expired session is 410.
	var tk struct {
		ID string `json:"id"`
	}
	if s := c.doJSON("POST", "/v1/tenants/acme/issues/vlan", "", nil, &tk); s != http.StatusCreated {
		t.Fatal("inject issue failed")
	}
	var info Info
	if s := c.doJSON("POST", "/v1/tenants/acme/sessions", "", map[string]string{"technician": "bob", "ticket": tk.ID}, &info); s != http.StatusCreated {
		t.Fatal("create session failed")
	}
	vc.Advance(2 * time.Minute)
	if s, _ := c.do("POST", "/v1/tenants/acme/sessions/"+info.Session+"/exec", info.Token,
		map[string]string{"device": info.Slice[0], "line": "show ip route"}); s != http.StatusGone {
		t.Fatalf("expired exec: status %d, want 410", s)
	}

	// Denied command (outside privilege) is 403: a VLAN ticket's spec does
	// not grant ACL writes, even on the suspect device itself.
	var tk2 struct {
		ID       string   `json:"id"`
		Suspects []string `json:"suspects"`
	}
	if s := c.doJSON("POST", "/v1/tenants/acme/issues/vlan", "", nil, &tk2); s != http.StatusCreated {
		t.Fatal("second inject failed")
	}
	if len(tk2.Suspects) == 0 {
		t.Fatal("vlan ticket has no suspects")
	}
	if s := c.doJSON("POST", "/v1/tenants/acme/sessions", "", map[string]string{"technician": "eve", "ticket": tk2.ID}, &info); s != http.StatusCreated {
		t.Fatal("second session failed")
	}
	if s, out := c.do("POST", "/v1/tenants/acme/sessions/"+info.Session+"/exec", info.Token,
		map[string]string{"device": tk2.Suspects[0], "line": "access-list EDGE 10 permit ip any any"}); s != http.StatusForbidden {
		t.Fatalf("denied exec: status %d, want 403 (%s)", s, out)
	}
}

func TestHTTPReviewOverloadIs429(t *testing.T) {
	svc := New(Config{VerifyWorkers: 1, VerifyQueue: 1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	c := &httpClient{t: t, srv: srv}

	if s, _ := c.do("POST", "/v1/tenants", "", map[string]string{"id": "acme", "scenario": "university"}); s != http.StatusCreated {
		t.Fatal("create tenant failed")
	}
	var tk struct {
		ID string `json:"id"`
	}
	if s := c.doJSON("POST", "/v1/tenants/acme/issues/acl", "", nil, &tk); s != http.StatusCreated {
		t.Fatal("inject issue failed")
	}
	var info Info
	if s := c.doJSON("POST", "/v1/tenants/acme/sessions", "", map[string]string{"technician": "alice", "ticket": tk.ID}, &info); s != http.StatusCreated {
		t.Fatal("create session failed")
	}

	// Saturate the pool directly (1 worker blocked + 1 queued), then hit
	// the review endpoint: it must fail fast with 429.
	release := make(chan struct{})
	started := make(chan struct{})
	go func() { _ = svc.Pool().Do("acme", func() { close(started); <-release }) }()
	<-started
	queued := make(chan error, 1)
	go func() { queued <- svc.Pool().Do("acme", func() {}) }()
	waitDepth(t, svc.Pool(), 1)

	s, out := c.do("POST", "/v1/tenants/acme/sessions/"+info.Session+"/review", info.Token, nil)
	if s != http.StatusTooManyRequests {
		t.Fatalf("overloaded review: status %d, want 429 (%s)", s, out)
	}
	close(release)
	if err := <-queued; err != nil {
		t.Fatalf("queued pool task failed: %v", err)
	}
}
