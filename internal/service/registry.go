package service

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"heimdall/internal/core"
	"heimdall/internal/scenarios"
	"heimdall/internal/twin"
)

// SessionState is the lifecycle state of a technician session.
type SessionState int

const (
	// SessionActive means the session accepts mediated commands.
	SessionActive SessionState = iota
	// SessionExpired means the idle sweeper reclaimed the session; every
	// further command is denied and audited.
	SessionExpired
	// SessionClosed means the technician (or an admin) closed it.
	SessionClosed
)

// String names the state.
func (s SessionState) String() string {
	switch s {
	case SessionActive:
		return "active"
	case SessionExpired:
		return "expired"
	case SessionClosed:
		return "closed"
	default:
		return fmt.Sprintf("SessionState(%d)", int(s))
	}
}

// Tenant is one customer network hosted by the service: a private
// scenario copy, a full Heimdall deployment (ticketing, enforcer, audit
// trail) and the technician sessions currently working its tickets.
type Tenant struct {
	ID       string
	Scenario string
	sys      *core.System
	scen     *scenarios.Scenario

	mu       sync.Mutex
	seq      int
	sessions map[string]*Session
}

// System exposes the tenant's Heimdall deployment (tests and the load
// generator reach through it for the ticket system and audit trail).
func (t *Tenant) System() *core.System { return t.sys }

// ScenarioData exposes the tenant's private scenario copy.
func (t *Tenant) ScenarioData() *scenarios.Scenario { return t.scen }

// Session is one technician twin session under a tenant, reachable over
// the API by (tenant, session id, attach token).
type Session struct {
	ID         string
	Technician string
	TicketID   string
	token      string

	tenant *Tenant

	// mu serializes API-level access to the session (console cache,
	// lifecycle state, idle stamp). The twin below has its own lock.
	mu         sync.Mutex
	eng        *core.Engagement
	consoles   map[string]*twin.Session
	state      SessionState
	createdAt  time.Time
	lastActive time.Time
	// endedAt is when the session left the active state; the sweeper
	// reaps ended sessions after a grace period.
	endedAt  time.Time
	commands int
}

// Engagement exposes the underlying core engagement (the load generator
// and tests reach through it for the twin and privilege spec). It is nil
// once the session has expired or closed: the engagement — a full twin
// copy of the tenant network — is released at end-of-life so a
// long-running daemon's memory tracks live sessions, not historic ones.
func (s *Session) Engagement() *core.Engagement {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng
}

// Info is the API-facing view of a session.
type Info struct {
	Tenant     string    `json:"tenant"`
	Session    string    `json:"session"`
	Technician string    `json:"technician"`
	Ticket     string    `json:"ticket"`
	State      string    `json:"state"`
	Created    time.Time `json:"created"`
	LastActive time.Time `json:"lastActive"`
	Commands   int       `json:"commands"`
	Slice      []string  `json:"slice,omitempty"`
	// Token is only populated on session creation.
	Token string `json:"token,omitempty"`
}

func (s *Session) infoLocked() Info {
	return Info{
		Tenant:     s.tenant.ID,
		Session:    s.ID,
		Technician: s.Technician,
		Ticket:     s.TicketID,
		State:      s.state.String(),
		Created:    s.createdAt,
		LastActive: s.lastActive,
		Commands:   s.commands,
	}
}

// registry is the sharded tenant map. Tenant lookup is the hottest
// metadata path of the service (every mediated command resolves its
// tenant first), so tenants spread over independently locked shards:
// one tenant's create/delete churn never contends with another shard's
// lookups.
type registry struct {
	shards []regShard
}

type regShard struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant
}

func newRegistry(shards int) *registry {
	if shards < 1 {
		shards = 1
	}
	r := &registry{shards: make([]regShard, shards)}
	for i := range r.shards {
		r.shards[i].tenants = make(map[string]*Tenant)
	}
	return r
}

// shardIndex maps a tenant ID onto its shard (FNV-1a, like the flow
// cache's key hashing: cheap and well distributed for short IDs).
func (r *registry) shardIndex(tenant string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(tenant))
	return int(h.Sum32() % uint32(len(r.shards)))
}

func (r *registry) shard(tenant string) *regShard {
	return &r.shards[r.shardIndex(tenant)]
}

// add registers a tenant; it fails if the ID is taken.
func (r *registry) add(t *Tenant) error {
	s := r.shard(t.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[t.ID]; ok {
		return fmt.Errorf("%w: %s", ErrTenantExists, t.ID)
	}
	s.tenants[t.ID] = t
	return nil
}

// get resolves a tenant, or ErrNoTenant.
func (r *registry) get(id string) (*Tenant, error) {
	s := r.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTenant, id)
	}
	return t, nil
}

// all returns every tenant sorted by ID.
func (r *registry) all() []*Tenant {
	var out []*Tenant
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, t := range s.tenants {
			out = append(out, t)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// count returns the number of tenants.
func (r *registry) count() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		n += len(s.tenants)
		s.mu.RUnlock()
	}
	return n
}
