package service

import (
	"sync"
	"time"

	"heimdall/internal/telemetry"
)

// Pool is a bounded worker pool with backpressure for the expensive
// verify/commit path (enforcer review + shadow-snapshot derivation). All
// tenants share one pool, so a fixed number of verifications run at any
// moment and a bounded number wait; when the queue is full Submit fails
// fast with ErrQueueFull (surfaced as HTTP 429) instead of growing an
// unbounded goroutine backlog behind an overloaded enforcer.
type Pool struct {
	tasks chan poolTask
	wg    sync.WaitGroup

	mu    sync.Mutex
	peak  int
	depth int
	// waits records per-task queue wait (submit to dequeue), bounded so a
	// long run cannot grow it without limit. Kept separate from the worker
	// service time: conflating the two made the load generator's p99 read
	// as "mediation got slow" when the truth was "the verify queue was
	// deep" (queue wait is backlog, service time is enforcer cost).
	waits []time.Duration

	closed    chan struct{}
	closeOnce sync.Once

	meter      telemetry.Meter
	depthGauge telemetry.Gauge
}

type poolTask struct {
	fn        func()
	done      chan struct{}
	submitted time.Time
}

// maxWaitSamples bounds the retained queue-wait samples (~512 KiB at the
// cap); later arrivals are still observed in the histogram.
const maxWaitSamples = 1 << 16

// NewPool starts workers goroutines consuming from a queue of the given
// capacity. workers and queue are clamped to at least 1.
func NewPool(workers, queue int, meter telemetry.Meter) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	if meter == nil {
		meter = telemetry.Nop()
	}
	p := &Pool{
		tasks:      make(chan poolTask, queue),
		closed:     make(chan struct{}),
		meter:      meter,
		depthGauge: meter.Gauge("heimdall_service_queue_depth"),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case t := <-p.tasks:
			p.addDepth(-1)
			start := time.Now()
			p.observeWait(start.Sub(t.submitted))
			t.fn()
			p.meter.Histogram("heimdall_service_verify_seconds", telemetry.LatencyBuckets).
				ObserveDuration(time.Since(start))
			close(t.done)
		case <-p.closed:
			return
		}
	}
}

func (p *Pool) addDepth(d int) {
	p.mu.Lock()
	p.depth += d
	if p.depth > p.peak {
		p.peak = p.depth
	}
	depth := p.depth
	p.mu.Unlock()
	p.depthGauge.Set(float64(depth))
}

func (p *Pool) observeWait(wait time.Duration) {
	if wait < 0 {
		wait = 0
	}
	p.meter.Histogram("heimdall_service_queue_wait_seconds", telemetry.LatencyBuckets).
		ObserveDuration(wait)
	p.mu.Lock()
	if len(p.waits) < maxWaitSamples {
		p.waits = append(p.waits, wait)
	}
	p.mu.Unlock()
}

// QueueWaits returns a copy of the recorded per-task queue waits (submit
// to worker dequeue), capped at maxWaitSamples entries.
func (p *Pool) QueueWaits() []time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]time.Duration, len(p.waits))
	copy(out, p.waits)
	return out
}

// Do submits fn and waits for a worker to finish it. It returns
// ErrQueueFull immediately when the queue has no room, and ErrPoolClosed
// after Close.
func (p *Pool) Do(fn func()) error {
	t := poolTask{fn: fn, done: make(chan struct{}), submitted: time.Now()}
	select {
	case <-p.closed:
		return ErrPoolClosed
	default:
	}
	select {
	case p.tasks <- t:
		p.addDepth(1)
	default:
		p.meter.Counter("heimdall_service_backpressure_total").Inc()
		return ErrQueueFull
	}
	select {
	case <-t.done:
		return nil
	case <-p.closed:
		// Workers drain in-flight tasks before exiting, but a task still
		// queued when Close lands is dropped.
		select {
		case <-t.done:
			return nil
		default:
			return ErrPoolClosed
		}
	}
}

// PeakDepth reports the highest queue depth observed (the load
// generator's "enforcer queue depth" headline).
func (p *Pool) PeakDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// Depth reports the current queue depth.
func (p *Pool) Depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.depth
}

// Close stops the workers. In-flight tasks finish; queued-but-unstarted
// tasks are dropped and their Do calls return ErrPoolClosed.
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.closed) })
	p.wg.Wait()
}
