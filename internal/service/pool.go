package service

import (
	"sync"
	"time"

	"heimdall/internal/telemetry"
)

// Pool is the bounded worker pool for the expensive verify/commit path
// (enforcer review + shadow-snapshot derivation), shared by all tenants.
//
// Scheduling is per-tenant fair: each tenant owns a bounded FIFO queue
// and workers dequeue round-robin across tenants, so one noisy tenant
// with hundreds of queued reviews delays its own sessions, not everyone
// else's — under the old single global FIFO a burst from tenant A pushed
// every other tenant's queue wait to A's backlog depth. Backpressure is
// still bounded and fail-fast, but per tenant: when a tenant's queue is
// full its Submit fails with ErrQueueFull (surfaced as HTTP 429) while
// other tenants keep enqueueing.
//
// DoShared adds in-flight request coalescing (singleflight): concurrent
// submissions carrying the same content key share one execution and one
// queue slot, so N sessions replaying the same scripted ticket cost one
// verification.
type Pool struct {
	mu   sync.Mutex
	cond *sync.Cond
	// queues holds one bounded FIFO per tenant; ring fixes the round-robin
	// order (tenants join on first submit and stay — an idle tenant's empty
	// queue costs one skipped ring slot per dispatch).
	queues    map[string]*tenantQueue
	ring      []string
	next      int
	tenantCap int
	depth     int
	peak      int
	// waits records per-task queue wait (submit to dequeue), bounded so a
	// long run cannot grow it without limit. Kept separate from the worker
	// service time: conflating the two made the load generator's p99 read
	// as "mediation got slow" when the truth was "the verify queue was
	// deep" (queue wait is backlog, service time is enforcer cost).
	waits    []time.Duration
	isClosed bool

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once

	flightMu sync.Mutex
	flights  map[string]*flight

	meter      telemetry.Meter
	depthGauge telemetry.Gauge
}

type tenantQueue struct {
	tasks []*poolTask
}

type poolTask struct {
	fn        func()
	done      chan struct{}
	submitted time.Time
	// started is set (under Pool.mu) when a worker dequeues the task; a
	// task that is started when Close lands will finish, an unstarted one
	// is dropped.
	started bool
}

// flight is one in-flight coalesced execution: the leader runs fn, every
// follower that arrives with the same key before it finishes waits on
// done and shares the result (and the leader's submit error — a follower
// joins the leader's fate, queue-full included).
type flight struct {
	done   chan struct{}
	result any
	err    error
}

// maxWaitSamples bounds the retained queue-wait samples (~512 KiB at the
// cap); later arrivals are still observed in the histogram.
const maxWaitSamples = 1 << 16

// NewPool starts workers goroutines dispatching round-robin over
// per-tenant queues of the given per-tenant capacity. workers and
// tenantQueueCap are clamped to at least 1.
func NewPool(workers, tenantQueueCap int, meter telemetry.Meter) *Pool {
	if workers < 1 {
		workers = 1
	}
	if tenantQueueCap < 1 {
		tenantQueueCap = 1
	}
	if meter == nil {
		meter = telemetry.Nop()
	}
	p := &Pool{
		queues:     make(map[string]*tenantQueue),
		tenantCap:  tenantQueueCap,
		closed:     make(chan struct{}),
		flights:    make(map[string]*flight),
		meter:      meter,
		depthGauge: meter.Gauge("heimdall_service_queue_depth"),
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// dequeueLocked pops the head of the next non-empty tenant queue in ring
// order. Callers hold p.mu.
func (p *Pool) dequeueLocked() (*poolTask, string, bool) {
	for i := 0; i < len(p.ring); i++ {
		name := p.ring[p.next%len(p.ring)]
		p.next = (p.next + 1) % len(p.ring)
		q := p.queues[name]
		if len(q.tasks) > 0 {
			t := q.tasks[0]
			q.tasks = q.tasks[1:]
			return t, name, true
		}
	}
	return nil, "", false
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for {
			if p.isClosed {
				p.mu.Unlock()
				return
			}
			t, tenant, ok := p.dequeueLocked()
			if !ok {
				p.cond.Wait()
				continue
			}
			t.started = true
			p.depth--
			depth := p.depth
			backlog := len(p.queues[tenant].tasks)
			p.mu.Unlock()
			p.depthGauge.Set(float64(depth))
			p.tenantGauge(tenant).Set(float64(backlog))
			start := time.Now()
			p.observeWait(start.Sub(t.submitted))
			t.fn()
			p.meter.Histogram("heimdall_service_verify_seconds", telemetry.LatencyBuckets).
				ObserveDuration(time.Since(start))
			close(t.done)
			break
		}
	}
}

func (p *Pool) tenantGauge(tenant string) telemetry.Gauge {
	return p.meter.Gauge("heimdall_service_tenant_queue_depth", telemetry.L("tenant", tenant))
}

func (p *Pool) observeWait(wait time.Duration) {
	if wait < 0 {
		wait = 0
	}
	p.meter.Histogram("heimdall_service_queue_wait_seconds", telemetry.LatencyBuckets).
		ObserveDuration(wait)
	p.mu.Lock()
	if len(p.waits) < maxWaitSamples {
		p.waits = append(p.waits, wait)
	}
	p.mu.Unlock()
}

// QueueWaits returns a copy of the recorded per-task queue waits (submit
// to worker dequeue), capped at maxWaitSamples entries.
func (p *Pool) QueueWaits() []time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]time.Duration, len(p.waits))
	copy(out, p.waits)
	return out
}

// Do submits fn on the tenant's queue and waits for a worker to finish
// it. It returns ErrQueueFull immediately when the tenant's queue has no
// room, and ErrPoolClosed after Close (unless the task had already
// started, in which case it is allowed to finish).
func (p *Pool) Do(tenant string, fn func()) error {
	t := &poolTask{fn: fn, done: make(chan struct{}), submitted: time.Now()}
	p.mu.Lock()
	if p.isClosed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	q, ok := p.queues[tenant]
	if !ok {
		q = &tenantQueue{}
		p.queues[tenant] = q
		p.ring = append(p.ring, tenant)
	}
	if len(q.tasks) >= p.tenantCap {
		p.mu.Unlock()
		p.meter.Counter("heimdall_service_backpressure_total").Inc()
		return ErrQueueFull
	}
	q.tasks = append(q.tasks, t)
	backlog := len(q.tasks)
	p.depth++
	if p.depth > p.peak {
		p.peak = p.depth
	}
	depth := p.depth
	p.mu.Unlock()
	p.depthGauge.Set(float64(depth))
	p.tenantGauge(tenant).Set(float64(backlog))
	p.cond.Signal()

	select {
	case <-t.done:
		return nil
	case <-p.closed:
		// Workers finish tasks they already dequeued before exiting; a
		// task still queued when Close lands is dropped.
		p.mu.Lock()
		started := t.started
		p.mu.Unlock()
		if started {
			<-t.done
			return nil
		}
		return ErrPoolClosed
	}
}

// DoShared is Do with in-flight coalescing: concurrent calls carrying the
// same (tenant, key) share one queue slot and one execution of fn, whose
// result every caller receives. The second return reports whether this
// call was a follower (coalesced onto an execution another call
// submitted). Keys must be content addresses — equal keys must mean fn
// would produce an equivalent result; a follower receives the verdict as
// of the leader's submission, exactly as if it had been queued then.
func (p *Pool) DoShared(tenant, key string, fn func() any) (any, bool, error) {
	fkey := tenant + "|" + key
	p.flightMu.Lock()
	if f, ok := p.flights[fkey]; ok {
		p.flightMu.Unlock()
		<-f.done
		return f.result, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	p.flights[fkey] = f
	p.flightMu.Unlock()

	f.err = p.Do(tenant, func() { f.result = fn() })
	p.flightMu.Lock()
	delete(p.flights, fkey)
	p.flightMu.Unlock()
	close(f.done)
	return f.result, false, f.err
}

// PeakDepth reports the highest total queue depth observed across all
// tenant queues (the load generator's "enforcer queue depth" headline).
func (p *Pool) PeakDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// Depth reports the current total queue depth across all tenant queues.
func (p *Pool) Depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.depth
}

// TenantBacklogs returns the current per-tenant queue depths (every
// tenant that has ever submitted, including idle ones at zero).
func (p *Pool) TenantBacklogs() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.queues))
	for name, q := range p.queues {
		out[name] = len(q.tasks)
	}
	return out
}

// Close stops the workers. In-flight tasks finish; queued-but-unstarted
// tasks are dropped and their Do calls return ErrPoolClosed.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.isClosed = true
		p.mu.Unlock()
		close(p.closed)
		p.cond.Broadcast()
	})
	p.wg.Wait()
}
