package service

import (
	"reflect"
	"sync"
	"testing"

	"heimdall/internal/scenarios"
	"heimdall/internal/telemetry"
	"heimdall/internal/ticket"
)

// reviewFixture stands up one tenant with two sessions that have replayed
// the same issue script — identical pending change sets, so their reviews
// share a content address.
type reviewFixture struct {
	svc   *Service
	reg   *telemetry.Registry
	issue *scenarios.Issue
	a, b  Info
}

func newReviewFixture(t *testing.T) *reviewFixture {
	t.Helper()
	reg := telemetry.NewRegistry()
	svc := New(Config{Meter: reg, PlatformSeed: "review-oracle"})
	t.Cleanup(svc.Close)
	if _, err := svc.CreateTenant("solo", "university"); err != nil {
		t.Fatal(err)
	}
	tn, err := svc.Tenant("solo")
	if err != nil {
		t.Fatal(err)
	}
	var issue *scenarios.Issue
	for i := range tn.ScenarioData().Issues {
		if tn.ScenarioData().Issues[i].Name == "acl" {
			issue = &tn.ScenarioData().Issues[i]
		}
	}
	if issue == nil {
		t.Fatal("university scenario lost its acl issue")
	}
	tk1, err := svc.InjectIssue("solo", "acl", "reporter")
	if err != nil {
		t.Fatal(err)
	}
	// Second ticket for the same already-injected fault: two technicians
	// working the same outage, each on their own twin.
	tk2, err := svc.CreateTicket("solo", ticket.Ticket{
		Summary: issue.Fault.Description, Kind: issue.Fault.Kind,
		SrcHost: issue.SrcHost, DstHost: issue.DstHost,
		Proto: issue.Proto, DstPort: issue.DstPort,
		Suspects:  []string{issue.Fault.RootCause},
		CreatedBy: "reporter",
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &reviewFixture{svc: svc, reg: reg, issue: issue}
	if f.a, err = svc.CreateSession("solo", "alice", tk1.ID); err != nil {
		t.Fatal(err)
	}
	if f.b, err = svc.CreateSession("solo", "bob", tk2.ID); err != nil {
		t.Fatal(err)
	}
	for _, info := range []Info{f.a, f.b} {
		for _, cmd := range issue.Script {
			if _, err := svc.Exec("solo", info.Session, info.Token, cmd.Device, cmd.Line); err != nil {
				t.Fatalf("exec %q on %s: %v", cmd.Line, cmd.Device, err)
			}
		}
	}
	return f
}

// TestServiceReviewCachedOracle is the service-level acceptance oracle:
// a review answered from the verdict cache or coalesced onto an in-flight
// verification returns a ReviewResult deep-equal to the fresh one, and a
// commit invalidates so no stale verdict survives a production change.
func TestServiceReviewCachedOracle(t *testing.T) {
	f := newReviewFixture(t)
	svc := f.svc

	fresh, err := svc.Review("solo", f.a.Session, f.a.Token)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.Accepted {
		t.Fatalf("scripted fix rejected: %+v", fresh)
	}
	if hits, coal := svc.ReviewStats(); hits != 0 || coal != 0 {
		t.Fatalf("stats after first review = (%d hits, %d coalesced), want (0, 0)", hits, coal)
	}

	// Bob's identical change set is answered from the verdict cache, and
	// the answer is indistinguishable from Alice's fresh review.
	cached, err := svc.Review("solo", f.b.Session, f.b.Token)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, cached) {
		t.Fatalf("cached review diverges from fresh:\nfresh:  %+v\ncached: %+v", fresh, cached)
	}
	hits, _ := svc.ReviewStats()
	if hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}

	// Hammer the same two sessions concurrently: every result identical,
	// and every review after the first accounted a hit or a coalesce.
	const extra = 8
	var wg sync.WaitGroup
	for i := 0; i < extra; i++ {
		info := f.a
		if i%2 == 1 {
			info = f.b
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := svc.Review("solo", info.Session, info.Token)
			if err != nil {
				t.Errorf("concurrent review: %v", err)
				return
			}
			if !reflect.DeepEqual(fresh, res) {
				t.Errorf("concurrent review diverges: %+v", res)
			}
		}()
	}
	wg.Wait()
	hits, coal := svc.ReviewStats()
	if hits+coal != 1+extra {
		t.Fatalf("hits(%d)+coalesced(%d) = %d, want %d (every repeat accounted)",
			hits, coal, hits+coal, 1+extra)
	}
	if got := f.reg.CounterValue("heimdall_service_review_cache_hits_total"); int64(got) != hits {
		t.Fatalf("cache-hit counter = %v, stats say %d", got, hits)
	}
	if got := f.reg.CounterValue("heimdall_service_review_coalesced_total"); int64(got) != coal {
		t.Fatalf("coalesced counter = %v, stats say %d", got, coal)
	}

	// Alice commits: production changed, so Bob's next review must be
	// recomputed against the new production — never served from the cache.
	com, err := svc.Commit("solo", f.a.Session, f.a.Token)
	if err != nil {
		t.Fatal(err)
	}
	if !com.Committed {
		t.Fatalf("commit refused: %+v", com)
	}
	if _, err := svc.Review("solo", f.b.Session, f.b.Token); err != nil {
		// Bob's twin predates the commit; a conflict error is a legitimate
		// fresh verdict. What must not happen is a stale cached acceptance.
		t.Logf("post-commit review reported: %v", err)
	}
	if h2, c2 := svc.ReviewStats(); h2 != hits || c2 != coal {
		t.Fatalf("post-commit review served from cache: stats went (%d, %d) -> (%d, %d)",
			hits, coal, h2, c2)
	}
}
