package service

import (
	"errors"
	"fmt"
	"testing"
)

func TestRegistryShardDistribution(t *testing.T) {
	const shards, tenants = 8, 200
	r := newRegistry(shards)
	counts := make([]int, shards)
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("t-%03d", i)
		if err := r.add(&Tenant{ID: id}); err != nil {
			t.Fatal(err)
		}
		idx := r.shardIndex(id)
		if idx < 0 || idx >= shards {
			t.Fatalf("shardIndex(%s) = %d, out of range", id, idx)
		}
		counts[idx]++
	}
	if r.count() != tenants {
		t.Fatalf("count = %d, want %d", r.count(), tenants)
	}
	// FNV-1a over sequential IDs should land tenants on every shard and
	// keep the spread within a loose bound of the 25-per-shard mean; a
	// degenerate hash (everything on one shard) must fail loudly.
	for i, c := range counts {
		if c == 0 {
			t.Errorf("shard %d received no tenants", i)
		}
		if c > tenants/2 {
			t.Errorf("shard %d received %d of %d tenants — degenerate distribution", i, c, tenants)
		}
	}
	// Lookups resolve through the same mapping.
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("t-%03d", i)
		got, err := r.get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != id {
			t.Fatalf("get(%s).ID = %s", id, got.ID)
		}
	}
}

func TestRegistryDuplicateAndMissing(t *testing.T) {
	r := newRegistry(4)
	if err := r.add(&Tenant{ID: "acme"}); err != nil {
		t.Fatal(err)
	}
	if err := r.add(&Tenant{ID: "acme"}); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("duplicate add = %v, want ErrTenantExists", err)
	}
	if _, err := r.get("ghost"); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("missing get = %v, want ErrNoTenant", err)
	}
	all := r.all()
	if len(all) != 1 || all[0].ID != "acme" {
		t.Fatalf("all = %v", all)
	}
}

func TestTenantIsolationNoAliasing(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	for _, id := range []string{"a", "b"} {
		if _, err := svc.CreateTenant(id, "university"); err != nil {
			t.Fatal(err)
		}
	}
	ta, _ := svc.Tenant("a")
	tb, _ := svc.Tenant("b")

	// No device pointer may be visible from two different tenants.
	// Within one tenant production aliases its private scenario copy by
	// design (core.NewSystem adopts the scenario network); only a pointer
	// shared ACROSS tenants is a leak.
	seen := make(map[any]string)
	record := func(owner string, m map[string]any) {
		for name, p := range m {
			if prev, ok := seen[p]; ok && prev != owner {
				t.Fatalf("device %s aliased between %s and %s", name, prev, owner)
			}
			seen[p] = owner
		}
	}
	collect := func(tn *Tenant) map[string]any {
		out := make(map[string]any)
		for name, d := range tn.System().Production().Devices {
			out[name] = d
		}
		for name, d := range tn.ScenarioData().Network.Devices {
			out["scen/"+name] = d
		}
		return out
	}
	record("tenant a", collect(ta))
	record("tenant b", collect(tb))

	// Mutating tenant a's production via an injected fault must leave b
	// untouched.
	if _, err := svc.InjectIssue("a", "acl", "test"); err != nil {
		t.Fatal(err)
	}
	if na, nb := len(ta.System().Tickets.List()), len(tb.System().Tickets.List()); na != 1 || nb != 0 {
		t.Fatalf("ticket leakage: a=%d b=%d", na, nb)
	}
}
