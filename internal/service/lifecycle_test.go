package service

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"heimdall/internal/audit"
	"heimdall/internal/scenarios"
	"heimdall/internal/telemetry"
	"heimdall/internal/ticket"
)

// newTestService builds a service on a VirtualClock with a registry
// meter, one university tenant, one injected issue and one session;
// returns everything a lifecycle test needs.
func newTestService(t *testing.T) (*Service, *telemetry.VirtualClock, *telemetry.Registry, Info) {
	t.Helper()
	vc := telemetry.NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	reg := telemetry.NewRegistry()
	svc := New(Config{
		Clock:        vc.Now,
		IdleTimeout:  10 * time.Minute,
		Meter:        reg,
		PlatformSeed: "lifecycle",
	})
	t.Cleanup(svc.Close)
	if _, err := svc.CreateTenant("acme", "university"); err != nil {
		t.Fatal(err)
	}
	tk, err := svc.InjectIssue("acme", "acl", "admin")
	if err != nil {
		t.Fatal(err)
	}
	info, err := svc.CreateSession("acme", "alice", tk.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Token == "" || info.Session == "" {
		t.Fatalf("session info missing token or id: %+v", info)
	}
	return svc, vc, reg, info
}

func TestSessionIdleExpiry(t *testing.T) {
	svc, vc, reg, info := newTestService(t)

	// Alive and mediated before the timeout.
	if len(info.Slice) == 0 {
		t.Fatal("session has an empty presentation slice")
	}
	if _, err := svc.Exec("acme", info.Session, info.Token, info.Slice[0], "show ip route"); err != nil {
		t.Fatal(err)
	}
	if got := reg.GaugeValue("heimdall_service_sessions_active", telemetry.L("tenant", "acme")); got != 1 {
		t.Fatalf("sessions_active = %v, want 1", got)
	}

	// Idle past the timeout: the sweeper reclaims it.
	vc.Advance(11 * time.Minute)
	if n := svc.SweepIdle(); n != 1 {
		t.Fatalf("SweepIdle = %d, want 1", n)
	}
	if got := reg.GaugeValue("heimdall_service_sessions_active", telemetry.L("tenant", "acme")); got != 0 {
		t.Fatalf("sessions_active after expiry = %v, want 0", got)
	}

	// Further Exec is denied with ErrSessionExpired and audited.
	_, err := svc.Exec("acme", info.Session, info.Token, info.Slice[0], "show ip route")
	if !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("Exec after expiry = %v, want ErrSessionExpired", err)
	}
	tenant, _ := svc.Tenant("acme")
	trail := tenant.System().Enforcer.Trail()
	var expired, denied bool
	for _, e := range trail.Entries() {
		if e.Kind == audit.KindSession && strings.Contains(e.Detail, "expired") && !e.Allowed {
			expired = true
		}
		if e.Kind == audit.KindSession && strings.Contains(e.Detail, "deny exec") && !e.Allowed {
			denied = true
		}
	}
	if !expired {
		t.Fatal("no KindSession expiry record in the audit trail")
	}
	if !denied {
		t.Fatal("no KindSession deny record for the post-expiry exec")
	}
	if err := trail.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionLazyExpiryWithoutSweep(t *testing.T) {
	svc, vc, _, info := newTestService(t)
	vc.Advance(11 * time.Minute)
	// No sweep ran; the Exec path itself must expire the session.
	_, err := svc.Exec("acme", info.Session, info.Token, info.Slice[0], "show ip route")
	if !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("lazy expiry: got %v, want ErrSessionExpired", err)
	}
	// Attach on an expired session reports the state without error.
	got, err := svc.Attach("acme", info.Session, info.Token)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "expired" {
		t.Fatalf("attach state = %s, want expired", got.State)
	}
}

func TestAttachTokenMismatch(t *testing.T) {
	svc, _, reg, info := newTestService(t)
	if _, err := svc.Attach("acme", info.Session, "deadbeef"); !errors.Is(err, ErrBadToken) {
		t.Fatalf("bad token attach = %v, want ErrBadToken", err)
	}
	if _, err := svc.Exec("acme", info.Session, "", info.Slice[0], "show ip route"); !errors.Is(err, ErrBadToken) {
		t.Fatalf("empty token exec = %v, want ErrBadToken", err)
	}
	if got := reg.CounterValue("heimdall_service_auth_failures_total", telemetry.L("tenant", "acme")); got != 2 {
		t.Fatalf("auth_failures_total = %v, want 2", got)
	}
	// The real token still works.
	if _, err := svc.Attach("acme", info.Session, info.Token); err != nil {
		t.Fatal(err)
	}
}

func TestSessionDoubleClose(t *testing.T) {
	svc, _, reg, info := newTestService(t)
	if err := svc.CloseSession("acme", info.Session, info.Token); err != nil {
		t.Fatal(err)
	}
	if err := svc.CloseSession("acme", info.Session, info.Token); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("double close = %v, want ErrSessionClosed", err)
	}
	if _, err := svc.Exec("acme", info.Session, info.Token, info.Slice[0], "show ip route"); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("exec after close = %v, want ErrSessionClosed", err)
	}
	if got := reg.GaugeValue("heimdall_service_sessions_active", telemetry.L("tenant", "acme")); got != 0 {
		t.Fatalf("sessions_active after close = %v, want 0", got)
	}
}

// TestEndedSessionReleasedAndReaped pins the memory lifecycle: ending a
// session drops its engagement (a full twin copy of the tenant network)
// immediately, the session stays addressable for one idle period so
// clients can observe the terminal state, and the next sweep after that
// grace window forgets it entirely.
func TestEndedSessionReleasedAndReaped(t *testing.T) {
	svc, vc, _, info := newTestService(t)
	if err := svc.CloseSession("acme", info.Session, info.Token); err != nil {
		t.Fatal(err)
	}
	sess, err := svc.lookup("acme", info.Session, info.Token)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Engagement() != nil {
		t.Fatal("closed session still holds its engagement (twin network copy)")
	}
	// Within the grace window the session stays addressable.
	if n := svc.SweepIdle(); n != 0 {
		t.Fatalf("sweep right after close = %d expiries, want 0", n)
	}
	got, err := svc.Attach("acme", info.Session, info.Token)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "closed" {
		t.Fatalf("attach state = %s, want closed", got.State)
	}
	// One idle period later the sweeper drops the registry entry.
	vc.Advance(11 * time.Minute)
	svc.SweepIdle()
	if _, err := svc.Attach("acme", info.Session, info.Token); !errors.Is(err, ErrNoSession) {
		t.Fatalf("reaped session attach = %v, want ErrNoSession", err)
	}
}

// TestInjectIssueConcurrentWithSessions hammers issue injection (a
// production-network write) against session creation (a production read:
// twin construction snapshots production) on one tenant. Run under
// -race, it pins InjectIssue to the prodMu write path.
func TestInjectIssueConcurrentWithSessions(t *testing.T) {
	svc, _, _, _ := newTestService(t)
	tn, err := svc.Tenant("acme")
	if err != nil {
		t.Fatal(err)
	}
	var is *scenarios.Issue
	for i := range tn.ScenarioData().Issues {
		if tn.ScenarioData().Issues[i].Name == "acl" {
			is = &tn.ScenarioData().Issues[i]
		}
	}
	if is == nil {
		t.Fatal("university scenario lost its acl issue")
	}

	const iters = 20
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < iters; i++ {
			if _, err := svc.InjectIssue("acme", "acl", "admin"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < iters; i++ {
		tk, err := svc.CreateTicket("acme", ticket.Ticket{
			Summary: is.Fault.Description, Kind: is.Fault.Kind,
			SrcHost: is.SrcHost, DstHost: is.DstHost,
			Proto: is.Proto, DstPort: is.DstPort,
			Suspects:  []string{is.Fault.RootCause},
			CreatedBy: "admin",
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.CreateSession("acme", fmt.Sprintf("bob-%02d", i), tk.ID); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

func TestExpiredSessionSkippedBySweep(t *testing.T) {
	svc, vc, _, _ := newTestService(t)
	vc.Advance(11 * time.Minute)
	if n := svc.SweepIdle(); n != 1 {
		t.Fatalf("first sweep = %d, want 1", n)
	}
	if n := svc.SweepIdle(); n != 0 {
		t.Fatalf("second sweep = %d, want 0 (already expired)", n)
	}
}
