package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"heimdall/internal/ticket"
	"heimdall/internal/twin"
)

// LoadConfig sizes a scripted-technician load run. The generator builds
// Tenants customer networks (round-robin across Scenarios), injects one
// scripted issue per tenant, opens SessionsPerTenant twin sessions per
// tenant — all concurrently live — and replays each issue's prepared
// diagnosis+fix script through the mediated Exec path, then (optionally)
// drives every session through the bounded review pool and commits one
// fix per tenant.
type LoadConfig struct {
	// Service is the target; nil builds a private one from ServiceConfig.
	Service *Service
	// ServiceConfig configures the private service when Service is nil.
	ServiceConfig Config
	// Tenants is the number of customer networks (default 50).
	Tenants int
	// SessionsPerTenant is the concurrent technician sessions per tenant
	// (default 20 — 1,000 sessions at the defaults).
	SessionsPerTenant int
	// Scenarios round-robins tenants across scenario names (default
	// university+enterprise).
	Scenarios []string
	// Reviews pushes every session's change set through the bounded
	// verify pool after its script (off unless explicitly enabled;
	// backpressure is counted, not fatal).
	Reviews bool
	// Commits lands one fix per tenant into tenant production.
	Commits bool
	// SetupWorkers bounds tenant/session construction concurrency
	// (default GOMAXPROCS; construction cost is excluded from the
	// throughput window).
	SetupWorkers int
}

// LoadReport is the run's result.
type LoadReport struct {
	Tenants  int   `json:"tenants"`
	Sessions int   `json:"sessions"`
	Commands int64 `json:"commands"`
	// Denied counts reference-monitor denials (twin.ErrDenied) only;
	// infrastructure failures (expired sessions, unknown devices, auth)
	// land in Errors so a clean run's "zero denials" headline means what
	// it says.
	Denied         int64   `json:"denied"`
	Errors         int64   `json:"errors"`
	Reviews      int64   `json:"reviews"`
	Backpressure int64   `json:"backpressure"`
	Commits      int64   `json:"commits"`
	SetupSeconds float64 `json:"setup_seconds"`
	// RunSeconds is the mediated-command phase only; ReviewSeconds is the
	// review/commit phase that follows it. The two run back-to-back with a
	// barrier between, so CmdsPerSec and the mediation percentiles measure
	// pure Exec throughput — before the split, verify/commit CPU from
	// fast-finishing sessions contended with still-running scripts and
	// polluted the mediation p99 (1.2s tails that were really enforcer
	// work, not mediation).
	RunSeconds    float64 `json:"run_seconds"`
	ReviewSeconds float64 `json:"review_seconds"`
	CmdsPerSec    float64 `json:"cmds_per_sec"`
	// P50Ms/P99Ms cover the mediated Exec path only — command parsing,
	// reference-monitor checks, twin apply. Verify-pool queue wait is
	// reported separately below so a deep review backlog cannot masquerade
	// as slow mediation.
	P50Ms            float64 `json:"p50_ms"`
	P99Ms            float64 `json:"p99_ms"`
	VerifyQueueP50Ms float64 `json:"verify_queue_p50_ms"`
	VerifyQueueP99Ms float64 `json:"verify_queue_p99_ms"`
	PeakQueueDepth   int     `json:"peak_queue_depth"`
	// CacheHits counts reviews answered from the enforcer's verdict cache;
	// Coalesced counts reviews that shared another session's in-flight
	// verification. Reviews = fresh + CacheHits + Coalesced.
	CacheHits int64 `json:"review_cache_hits"`
	Coalesced int64 `json:"review_coalesced"`
}

// String renders the report's headline.
func (r *LoadReport) String() string {
	return fmt.Sprintf(
		"%d tenants, %d concurrent sessions: %d mediated commands in %.2fs (%.0f cmds/sec, mediation p50 %.3fms, p99 %.3fms), %d denied, %d errors; %d reviews in %.2fs (%d cache hits, %d coalesced, %d backpressured), %d commits, verify queue wait p50 %.3fms, p99 %.3fms, peak depth %d",
		r.Tenants, r.Sessions, r.Commands, r.RunSeconds, r.CmdsPerSec,
		r.P50Ms, r.P99Ms, r.Denied, r.Errors, r.Reviews, r.ReviewSeconds,
		r.CacheHits, r.Coalesced, r.Backpressure, r.Commits,
		r.VerifyQueueP50Ms, r.VerifyQueueP99Ms, r.PeakQueueDepth)
}

// loadSession is one scripted technician session prepared for the run.
type loadSession struct {
	tenant string
	id     string
	token  string
	script []ticket.FixCommand
	commit bool
}

// RunLoad executes the load run and reports throughput, mediation
// latency percentiles and verify-queue pressure.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Tenants <= 0 {
		cfg.Tenants = 50
	}
	if cfg.SessionsPerTenant <= 0 {
		cfg.SessionsPerTenant = 20
	}
	if len(cfg.Scenarios) == 0 {
		cfg.Scenarios = []string{"university", "enterprise"}
	}
	if cfg.SetupWorkers <= 0 {
		cfg.SetupWorkers = 8
	}
	svc := cfg.Service
	if svc == nil {
		svc = New(cfg.ServiceConfig)
		defer svc.Close()
	}

	setupStart := time.Now()
	sessions, err := setupLoad(svc, cfg)
	if err != nil {
		return nil, err
	}
	setup := time.Since(setupStart)

	// Every session is live before the first command: the run phase
	// measures pure mediated-command throughput with Tenants×Sessions
	// concurrent technicians. Reviews and commits run in a second phase
	// behind a barrier, so the mediation percentiles never absorb
	// verify/commit CPU from sessions that finished their scripts early.
	var (
		commands, denied, execErrs, reviews, backpressure, commits atomic.Int64

		latMu     sync.Mutex
		latencies []time.Duration
	)
	runStart := time.Now()
	var wg sync.WaitGroup
	for i := range sessions {
		ls := &sessions[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, len(ls.script))
			for _, cmd := range ls.script {
				t0 := time.Now()
				_, err := svc.Exec(ls.tenant, ls.id, ls.token, cmd.Device, cmd.Line)
				local = append(local, time.Since(t0))
				commands.Add(1)
				if err != nil {
					var d *twin.ErrDenied
					if errors.As(err, &d) {
						denied.Add(1)
					} else {
						execErrs.Add(1)
					}
				}
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			latMu.Unlock()
		}()
	}
	wg.Wait()
	run := time.Since(runStart)

	// Phase two: every session submits its change set for review, and one
	// session per tenant commits. All sessions replayed the same scripted
	// fix, so this is the cache/coalescing worst case the MSP workload
	// actually looks like — near-duplicate change sets arriving together.
	hits0, coal0 := svc.ReviewStats()
	reviewStart := time.Now()
	if cfg.Reviews || cfg.Commits {
		var rwg sync.WaitGroup
		for i := range sessions {
			ls := &sessions[i]
			rwg.Add(1)
			go func() {
				defer rwg.Done()
				if cfg.Reviews {
					_, err := svc.Review(ls.tenant, ls.id, ls.token)
					switch {
					case errors.Is(err, ErrQueueFull):
						backpressure.Add(1)
					case err == nil:
						reviews.Add(1)
					default:
						reviews.Add(1) // reviewed but rejected/empty — still work done
					}
				}
				if cfg.Commits && ls.commit {
					if _, err := svc.Commit(ls.tenant, ls.id, ls.token); err == nil {
						commits.Add(1)
					} else if errors.Is(err, ErrQueueFull) {
						backpressure.Add(1)
					}
				}
			}()
		}
		rwg.Wait()
	}
	reviewDur := time.Since(reviewStart)
	hits1, coal1 := svc.ReviewStats()

	// Tear down: close every session that is still active.
	for i := range sessions {
		ls := &sessions[i]
		_ = svc.CloseSession(ls.tenant, ls.id, ls.token)
	}

	rep := &LoadReport{
		Tenants:        cfg.Tenants,
		Sessions:       len(sessions),
		Commands:       commands.Load(),
		Denied:         denied.Load(),
		Errors:         execErrs.Load(),
		Reviews:        reviews.Load(),
		Backpressure:   backpressure.Load(),
		Commits:        commits.Load(),
		SetupSeconds:   setup.Seconds(),
		RunSeconds:     run.Seconds(),
		ReviewSeconds:  reviewDur.Seconds(),
		PeakQueueDepth: svc.Pool().PeakDepth(),
		CacheHits:      hits1 - hits0,
		Coalesced:      coal1 - coal0,
	}
	if run > 0 {
		rep.CmdsPerSec = float64(rep.Commands) / run.Seconds()
	}
	rep.P50Ms, rep.P99Ms = percentiles(latencies)
	rep.VerifyQueueP50Ms, rep.VerifyQueueP99Ms = percentiles(svc.Pool().QueueWaits())
	return rep, nil
}

// setupLoad creates tenants, injects one scripted issue per tenant, files
// one ticket per session and opens every twin session.
func setupLoad(svc *Service, cfg LoadConfig) ([]loadSession, error) {
	type tenantPlan struct {
		id       string
		scenario string
	}
	plans := make([]tenantPlan, cfg.Tenants)
	for i := range plans {
		plans[i] = tenantPlan{
			id:       fmt.Sprintf("t-%03d", i),
			scenario: cfg.Scenarios[i%len(cfg.Scenarios)],
		}
	}

	sessions := make([]loadSession, cfg.Tenants*cfg.SessionsPerTenant)
	sem := make(chan struct{}, cfg.SetupWorkers)
	var wg sync.WaitGroup
	var (
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		if err == nil {
			return
		}
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for ti, plan := range plans {
		ti, plan := ti, plan
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := svc.CreateTenant(plan.id, plan.scenario); err != nil {
				fail(err)
				return
			}
			t, err := svc.Tenant(plan.id)
			if err != nil {
				fail(err)
				return
			}
			issues := t.ScenarioData().Issues
			if len(issues) == 0 {
				fail(fmt.Errorf("service: scenario %s has no issues", plan.scenario))
				return
			}
			issue := issues[ti%len(issues)]
			// One fault per tenant; every session diagnoses and fixes it
			// in its own twin, each under its own ticket.
			first, err := svc.InjectIssue(plan.id, issue.Name, "loadgen")
			if err != nil {
				fail(err)
				return
			}
			for si := 0; si < cfg.SessionsPerTenant; si++ {
				tk := first
				if si > 0 {
					tk, err = svc.CreateTicket(plan.id, ticket.Ticket{
						Summary: issue.Fault.Description, Kind: issue.Fault.Kind,
						SrcHost: issue.SrcHost, DstHost: issue.DstHost,
						Proto: issue.Proto, DstPort: issue.DstPort,
						Suspects:  []string{issue.Fault.RootCause},
						CreatedBy: "loadgen",
					})
					if err != nil {
						fail(err)
						return
					}
				}
				tech := fmt.Sprintf("tech-%03d-%02d", ti, si)
				info, err := svc.CreateSession(plan.id, tech, tk.ID)
				if err != nil {
					fail(err)
					return
				}
				sessions[ti*cfg.SessionsPerTenant+si] = loadSession{
					tenant: plan.id,
					id:     info.Session,
					token:  info.Token,
					script: issue.Script,
					commit: si == 0,
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return sessions, nil
}

// percentiles returns (p50, p99) in milliseconds.
func percentiles(lat []time.Duration) (p50, p99 float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(q float64) float64 {
		idx := int(q * float64(len(lat)-1))
		return float64(lat[idx].Nanoseconds()) / 1e6
	}
	return at(0.50), at(0.99)
}
