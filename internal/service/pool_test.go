package service

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"heimdall/internal/telemetry"
)

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(2, 4, telemetry.Nop())
	defer p.Close()
	var mu sync.Mutex
	n := 0
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Do(func() {
				mu.Lock()
				n++
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	// With queue 4 and 2 workers some of the 20 may be rejected, but every
	// accepted task must have run.
	if n == 0 {
		t.Fatal("no tasks ran")
	}
}

func TestPoolBackpressure(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPool(1, 2, reg)
	defer p.Close()

	// Block the single worker so further submissions pile into the queue.
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = p.Do(func() {
			close(started)
			<-release
		})
	}()
	<-started

	// Fill the queue (capacity 2) with tasks that will wait.
	fill := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fill <- p.Do(func() {})
		}()
	}
	// Wait until both queued tasks are actually enqueued.
	waitDepth(t, p, 2)

	// The next submission must fail fast with ErrQueueFull.
	if err := p.Do(func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overloaded Do = %v, want ErrQueueFull", err)
	}
	if got := reg.CounterValue("heimdall_service_backpressure_total"); got != 1 {
		t.Fatalf("backpressure counter = %v, want 1", got)
	}

	close(release)
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-fill; err != nil {
			t.Fatalf("queued task failed: %v", err)
		}
	}
	if p.PeakDepth() < 2 {
		t.Fatalf("PeakDepth = %d, want >= 2", p.PeakDepth())
	}
	if p.Depth() != 0 {
		t.Fatalf("Depth after drain = %d, want 0", p.Depth())
	}
}

func TestPoolClose(t *testing.T) {
	p := NewPool(1, 1, telemetry.Nop())
	p.Close()
	if err := p.Do(func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Do after Close = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

// waitDepth waits until the pool's queue depth reaches want.
func waitDepth(t *testing.T, p *Pool, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.Depth() >= want {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("queue depth never reached %d (at %d)", want, p.Depth())
}
