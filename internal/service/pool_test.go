package service

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heimdall/internal/telemetry"
)

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(2, 4, telemetry.Nop())
	defer p.Close()
	var mu sync.Mutex
	n := 0
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Do("acme", func() {
				mu.Lock()
				n++
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	// With queue 4 and 2 workers some of the 20 may be rejected, but every
	// accepted task must have run.
	if n == 0 {
		t.Fatal("no tasks ran")
	}
}

func TestPoolBackpressure(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPool(1, 2, reg)
	defer p.Close()

	// Block the single worker so further submissions pile into the queue.
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = p.Do("acme", func() {
			close(started)
			<-release
		})
	}()
	<-started

	// Fill the queue (capacity 2) with tasks that will wait.
	fill := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fill <- p.Do("acme", func() {})
		}()
	}
	// Wait until both queued tasks are actually enqueued.
	waitDepth(t, p, 2)

	// The next submission must fail fast with ErrQueueFull.
	if err := p.Do("acme", func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overloaded Do = %v, want ErrQueueFull", err)
	}
	if got := reg.CounterValue("heimdall_service_backpressure_total"); got != 1 {
		t.Fatalf("backpressure counter = %v, want 1", got)
	}

	close(release)
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-fill; err != nil {
			t.Fatalf("queued task failed: %v", err)
		}
	}
	if p.PeakDepth() < 2 {
		t.Fatalf("PeakDepth = %d, want >= 2", p.PeakDepth())
	}
	if p.Depth() != 0 {
		t.Fatalf("Depth after drain = %d, want 0", p.Depth())
	}
}

func TestPoolClose(t *testing.T) {
	p := NewPool(1, 1, telemetry.Nop())
	p.Close()
	if err := p.Do("acme", func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Do after Close = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

// TestPoolFairRoundRobin pins the scheduling contract: with one worker
// blocked and a noisy tenant's backlog already queued, a quiet tenant's
// single submission is dispatched on the next round-robin pass — not
// behind the noisy tenant's whole backlog as the old global FIFO did.
func TestPoolFairRoundRobin(t *testing.T) {
	p := NewPool(1, 8, telemetry.Nop())
	defer p.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = p.Do("noisy", func() { close(started); <-release })
	}()
	<-started

	var mu sync.Mutex
	var order []string
	submit := func(tenant string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Do(tenant, func() {
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
			})
		}()
	}
	for i := 0; i < 5; i++ {
		submit("noisy")
	}
	waitDepth(t, p, 5) // the noisy backlog is fully queued first
	submit("quiet")
	waitDepth(t, p, 6)

	close(release)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 6 {
		t.Fatalf("ran %d tasks, want 6", len(order))
	}
	quietAt := -1
	for i, tenant := range order {
		if tenant == "quiet" {
			quietAt = i
		}
	}
	// Round-robin dispatch: at most one noisy head-of-line task runs before
	// the quiet tenant's turn. A global FIFO would run it last (index 5).
	if quietAt < 0 || quietAt > 1 {
		t.Fatalf("quiet tenant ran at position %d of %v, want <= 1", quietAt, order)
	}
}

// TestPoolDoSharedCoalesces pins singleflight semantics: concurrent
// same-key submissions share the leader's one execution and result, a
// different key executes on its own, and a leader that hits backpressure
// surfaces ErrQueueFull.
func TestPoolDoSharedCoalesces(t *testing.T) {
	p := NewPool(1, 4, telemetry.Nop())
	defer p.Close()

	// Block the single worker so the leader's flight stays open while the
	// followers arrive.
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = p.Do("acme", func() { close(started); <-release })
	}()
	<-started

	var execs, coalesced atomic.Int32
	type shared struct {
		v   any
		err error
	}
	results := make(chan shared, 4)
	call := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, c, err := p.DoShared("acme", "k1", func() any {
				execs.Add(1)
				return 42
			})
			if c {
				coalesced.Add(1)
			}
			results <- shared{v, err}
		}()
	}
	call() // leader: enqueued behind the blocker, flight registered
	waitDepth(t, p, 1)
	for i := 0; i < 3; i++ {
		call() // followers: must join the open flight, not enqueue
	}
	// Followers park on the flight without consuming queue slots; give them
	// a beat to register, then let the worker run the leader's task.
	time.Sleep(20 * time.Millisecond)
	if d := p.Depth(); d != 1 {
		t.Fatalf("depth with 3 followers parked = %d, want 1 (leader only)", d)
	}
	close(release)
	wg.Wait()

	for i := 0; i < 4; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("DoShared error: %v", r.err)
		}
		if r.v != 42 {
			t.Fatalf("shared result = %v, want 42", r.v)
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	if got := coalesced.Load(); got != 3 {
		t.Fatalf("coalesced count = %d, want 3", got)
	}

	// A different key after the flight closed executes independently.
	v, c, err := p.DoShared("acme", "k2", func() any {
		execs.Add(1)
		return 7
	})
	if err != nil || c || v != 7 {
		t.Fatalf("distinct key: v=%v coalesced=%v err=%v, want 7/false/nil", v, c, err)
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("fn executed %d times after distinct key, want 2", got)
	}
}

// TestPoolDoSharedBackpressure: a DoShared leader rejected by the
// tenant's full queue fails fast with ErrQueueFull like plain Do.
func TestPoolDoSharedBackpressure(t *testing.T) {
	p := NewPool(1, 1, telemetry.Nop())
	defer p.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = p.Do("acme", func() { close(started); <-release })
	}()
	<-started
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = p.Do("acme", func() {}) // fills the queue (capacity 1)
	}()
	waitDepth(t, p, 1)

	if _, c, err := p.DoShared("acme", "k", func() any { return nil }); !errors.Is(err, ErrQueueFull) || c {
		t.Fatalf("overloaded DoShared = (coalesced=%v, %v), want ErrQueueFull", c, err)
	}
	close(release)
	wg.Wait()
}

// TestPoolDoSharedHammer races many goroutines over a small key space
// under -race: every caller must get its own key's result back.
func TestPoolDoSharedHammer(t *testing.T) {
	p := NewPool(2, 256, telemetry.Nop())
	defer p.Close()

	keys := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				key := keys[(g+i)%len(keys)]
				v, _, err := p.DoShared("t", key, func() any { return "r:" + key })
				if err != nil {
					t.Errorf("DoShared(%s): %v", key, err)
					return
				}
				if s, ok := v.(string); !ok || s != "r:"+key {
					t.Errorf("DoShared(%s) = %v, want r:%s", key, v, key)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// waitDepth waits until the pool's queue depth reaches want.
func waitDepth(t *testing.T, p *Pool, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.Depth() >= want {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("queue depth never reached %d (at %d)", want, p.Depth())
}
