// Package service is Heimdall's multi-tenant MSP layer: one long-running
// heimdalld process hosting many customer networks at once. The paper's
// single-network deployment (one twin, one enforcer, one trail) becomes
// the per-tenant unit; the service adds what an MSP-scale control plane
// needs around it:
//
//   - a sharded tenant/session registry with full session lifecycle
//     (create, attach via token, idle-expire via a pluggable clock,
//     explicit close), so thousands of concurrent technician sessions
//     resolve their tenant without a global lock;
//   - a bounded worker pool with backpressure for the expensive
//     verify/commit path, so N tenants share a fixed verification
//     capacity and overload surfaces as queue-full (HTTP 429) instead of
//     unbounded goroutines piling up behind the enforcer;
//   - per-tenant isolation: every tenant gets an independent scenario
//     copy, ticket system, policy enforcer and audit trail — one
//     compromised or noisy tenant can never observe or mutate another's
//     state (the zero-trust policy-enforcement-point shape, applied to
//     network mediation).
//
// The HTTP JSON API over this layer lives in http.go; the scripted
// technician load generator in loadgen.go.
package service

import (
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"heimdall/internal/audit"
	"heimdall/internal/core"
	"heimdall/internal/enforcer"
	"heimdall/internal/scenarios"
	"heimdall/internal/scenarios/generate"
	"heimdall/internal/telemetry"
	"heimdall/internal/ticket"
	"heimdall/internal/twin"
)

// Sentinel errors, mapped onto HTTP statuses by the API layer.
var (
	ErrNoTenant       = errors.New("service: no such tenant")
	ErrTenantExists   = errors.New("service: tenant already exists")
	ErrNoScenario     = errors.New("service: unknown scenario")
	ErrNoSession      = errors.New("service: no such session")
	ErrBadToken       = errors.New("service: attach token mismatch")
	ErrSessionExpired = errors.New("service: session expired")
	ErrSessionClosed  = errors.New("service: session closed")
	ErrQueueFull      = errors.New("service: verify queue full")
	ErrPoolClosed     = errors.New("service: verify pool closed")
)

// ScenarioFunc builds a fresh scenario. Every call must return an
// independent value: the service hands one to each tenant and tenants
// mutate their networks freely.
type ScenarioFunc func() *scenarios.Scenario

// Config tunes a Service.
type Config struct {
	// Catalog maps scenario names to constructors. Nil installs the
	// built-in scenarios (enterprise, university, provider, fattree, wan).
	Catalog map[string]ScenarioFunc
	// Shards is the tenant-registry shard count (default 8).
	Shards int
	// VerifyWorkers bounds concurrent enforcer reviews/commits across all
	// tenants (default GOMAXPROCS).
	VerifyWorkers int
	// VerifyQueue bounds reviews waiting for a worker *per tenant* (the
	// pool schedules round-robin across per-tenant queues); a full tenant
	// queue fails fast with ErrQueueFull (default 64).
	VerifyQueue int
	// IdleTimeout expires sessions with no command activity (default
	// 30m). The sweep runs from SweepIdle (heimdalld drives it on a
	// timer; tests call it directly under a VirtualClock).
	IdleTimeout time.Duration
	// Clock is the lifecycle time source (default time.Now; tests pass
	// telemetry.VirtualClock.Now).
	Clock func() time.Time
	// Meter receives service metrics and is threaded through every
	// tenant's mediation path. Pass a *telemetry.Registry to serve
	// /metrics; nil means the no-op meter.
	Meter telemetry.Meter
	// PlatformSeed, when set, derives each tenant's enclave platform
	// deterministically (seed + tenant ID) for reproducible tests.
	PlatformSeed string
}

// Service hosts many customer networks concurrently.
type Service struct {
	catalog map[string]ScenarioFunc
	reg     *registry
	pool    *Pool
	clock   func() time.Time
	idle    time.Duration
	meter   telemetry.Meter
	seed    string

	// reviewCacheHits counts reviews answered from the enforcer's
	// content-addressed verdict cache; reviewCoalesced counts reviews that
	// joined another session's in-flight verification instead of queueing
	// their own. Mirrored to the heimdall_service_review_* counters.
	reviewCacheHits atomic.Int64
	reviewCoalesced atomic.Int64
}

// BuiltinCatalog returns the built-in evaluation scenarios: the three
// hand-built Table 1 networks plus two generated ones at their smallest
// tier (a k=4 fat-tree datacenter and a 4-site WAN), so multi-tenant runs
// can mix hand-built and generated topologies without custom wiring.
func BuiltinCatalog() map[string]ScenarioFunc {
	return map[string]ScenarioFunc{
		"enterprise": scenarios.Enterprise,
		"university": scenarios.University,
		"provider":   scenarios.Provider,
		"fattree": func() *scenarios.Scenario {
			return generate.FatTree(generate.FatTreeParams{K: 4})
		},
		"wan": func() *scenarios.Scenario {
			return generate.WAN(generate.WANParams{Sites: 4})
		},
	}
}

// New assembles a service from the config's defaults.
func New(cfg Config) *Service {
	if cfg.Catalog == nil {
		cfg.Catalog = BuiltinCatalog()
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.VerifyWorkers <= 0 {
		cfg.VerifyWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.VerifyQueue <= 0 {
		cfg.VerifyQueue = 64
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 30 * time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Meter == nil {
		cfg.Meter = telemetry.Nop()
	}
	// Touch the hot-path counters once so /metrics exposes them at zero
	// from the first scrape (the registry only dumps metrics it has seen).
	cfg.Meter.Counter("heimdall_service_review_cache_hits_total")
	cfg.Meter.Counter("heimdall_service_review_coalesced_total")
	cfg.Meter.Counter("heimdall_service_backpressure_total")
	return &Service{
		catalog: cfg.Catalog,
		reg:     newRegistry(cfg.Shards),
		pool:    NewPool(cfg.VerifyWorkers, cfg.VerifyQueue, cfg.Meter),
		clock:   cfg.Clock,
		idle:    cfg.IdleTimeout,
		meter:   cfg.Meter,
		seed:    cfg.PlatformSeed,
	}
}

// Meter returns the service's meter.
func (s *Service) Meter() telemetry.Meter { return s.meter }

// Pool returns the shared verify pool (the load generator reads its
// peak queue depth).
func (s *Service) Pool() *Pool { return s.pool }

// Close stops the verify pool. Sessions need no teardown beyond it.
func (s *Service) Close() { s.pool.Close() }

// TenantInfo is the API-facing view of a tenant.
type TenantInfo struct {
	ID       string `json:"id"`
	Scenario string `json:"scenario"`
	Sessions int    `json:"sessions"`
	Tickets  int    `json:"tickets"`
	Devices  int    `json:"devices"`
}

// CreateTenant onboards a customer network: a fresh scenario instance
// from the catalog (every tenant owns an independent copy) wrapped in a
// full Heimdall deployment.
func (s *Service) CreateTenant(id, scenario string) (TenantInfo, error) {
	if id == "" {
		return TenantInfo{}, fmt.Errorf("service: empty tenant id")
	}
	build, ok := s.catalog[scenario]
	if !ok {
		return TenantInfo{}, fmt.Errorf("%w: %s", ErrNoScenario, scenario)
	}
	// Constructors build from scratch, but Clone anyway: a catalog entry
	// that memoizes (or a caller-supplied closure over one Scenario) must
	// not leak shared structures between tenants.
	scen := build().Clone()
	opts := core.Options{
		Network:   scen.Network,
		Policies:  scen.Policies,
		Sensitive: scen.Sensitive,
		Meter:     s.meter,
	}
	if s.seed != "" {
		opts.PlatformSeed = s.seed + "/" + id
	}
	sys, err := core.NewSystem(opts)
	if err != nil {
		return TenantInfo{}, err
	}
	sys.Tickets.SetClock(s.clock)
	// The service routes every production mutation through paths the
	// enforcer observes (its own commit pipeline, MutateProduction,
	// emergency sessions), so memoizing review verdicts by content is
	// safe here — the MSP workload's near-duplicate scripted tickets make
	// it the single biggest queue-drain lever.
	sys.Enforcer.EnableReviewCache(0)
	t := &Tenant{
		ID:       id,
		Scenario: scenario,
		sys:      sys,
		scen:     scen,
		sessions: make(map[string]*Session),
	}
	if err := s.reg.add(t); err != nil {
		return TenantInfo{}, err
	}
	s.meter.Gauge("heimdall_service_tenants").Set(float64(s.reg.count()))
	return s.tenantInfo(t), nil
}

func (s *Service) tenantInfo(t *Tenant) TenantInfo {
	t.mu.Lock()
	sessions := len(t.sessions)
	t.mu.Unlock()
	return TenantInfo{
		ID:       t.ID,
		Scenario: t.Scenario,
		Sessions: sessions,
		Tickets:  len(t.sys.Tickets.List()),
		Devices:  len(t.sys.Production().Devices),
	}
}

// Tenants lists every tenant sorted by ID.
func (s *Service) Tenants() []TenantInfo {
	ts := s.reg.all()
	out := make([]TenantInfo, len(ts))
	for i, t := range ts {
		out[i] = s.tenantInfo(t)
	}
	return out
}

// Tenant resolves one tenant.
func (s *Service) Tenant(id string) (*Tenant, error) { return s.reg.get(id) }

// ShardIndex exposes the registry's shard mapping (tests assert the
// distribution).
func (s *Service) ShardIndex(tenant string) int { return s.reg.shardIndex(tenant) }

// Shards returns the registry shard count.
func (s *Service) Shards() int { return len(s.reg.shards) }

// CreateTicket files a ticket with the tenant's ticketing system.
func (s *Service) CreateTicket(tenant string, tk ticket.Ticket) (*ticket.Ticket, error) {
	t, err := s.reg.get(tenant)
	if err != nil {
		return nil, err
	}
	created := t.sys.Tickets.Create(tk)
	s.meter.Counter("heimdall_service_tickets_total", telemetry.L("tenant", tenant)).Inc()
	return created, nil
}

// Tickets lists the tenant's tickets.
func (s *Service) Tickets(tenant string) ([]ticket.Ticket, error) {
	t, err := s.reg.get(tenant)
	if err != nil {
		return nil, err
	}
	return t.sys.Tickets.List(), nil
}

// InjectIssue injects one of the tenant scenario's scripted issues into
// the tenant's production network and files the matching ticket — the
// service-level analogue of the evaluation harness (and what the load
// generator and the CI smoke drive).
func (s *Service) InjectIssue(tenant, issue, reporter string) (*ticket.Ticket, error) {
	t, err := s.reg.get(tenant)
	if err != nil {
		return nil, err
	}
	var is *scenarios.Issue
	for i := range t.scen.Issues {
		if t.scen.Issues[i].Name == issue {
			is = &t.scen.Issues[i]
		}
	}
	if is == nil {
		return nil, fmt.Errorf("service: no issue %q in scenario %s", issue, t.Scenario)
	}
	if err := t.sys.MutateProduction(is.Fault.Inject); err != nil {
		return nil, err
	}
	return s.CreateTicket(tenant, ticket.Ticket{
		Summary: is.Fault.Description, Kind: is.Fault.Kind,
		SrcHost: is.SrcHost, DstHost: is.DstHost,
		Proto: is.Proto, DstPort: is.DstPort,
		Suspects:  []string{is.Fault.RootCause},
		CreatedBy: reporter,
	})
}

// CreateSession assigns the ticket to the technician and builds the twin
// session. The returned Info carries the attach token — the only time
// the service reveals it.
func (s *Service) CreateSession(tenant, technician, ticketID string) (Info, error) {
	t, err := s.reg.get(tenant)
	if err != nil {
		return Info{}, err
	}
	eng, err := t.sys.StartWork(ticketID, technician)
	if err != nil {
		return Info{}, err
	}
	token, err := newToken()
	if err != nil {
		return Info{}, err
	}
	now := s.clock()
	t.mu.Lock()
	t.seq++
	sess := &Session{
		ID:         fmt.Sprintf("S-%04d", t.seq),
		Technician: technician,
		TicketID:   ticketID,
		token:      token,
		tenant:     t,
		eng:        eng,
		consoles:   make(map[string]*twin.Session),
		state:      SessionActive,
		createdAt:  now,
		lastActive: now,
	}
	t.sessions[sess.ID] = sess
	t.mu.Unlock()

	s.meter.Counter("heimdall_service_sessions_total", telemetry.L("tenant", tenant)).Inc()
	s.sessionsActive(t).Add(1)
	info := sess.snapshotInfo()
	info.Token = token
	info.Slice = eng.Twin.VisibleDevices()
	return info, nil
}

func (s *Service) sessionsActive(t *Tenant) telemetry.Gauge {
	return s.meter.Gauge("heimdall_service_sessions_active", telemetry.L("tenant", t.ID))
}

func (sess *Session) snapshotInfo() Info {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.infoLocked()
}

// newToken mints a 128-bit random attach token.
func newToken() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// lookup resolves (tenant, session) and authenticates the token.
func (s *Service) lookup(tenant, session, token string) (*Session, error) {
	t, err := s.reg.get(tenant)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	sess, ok := t.sessions[session]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoSession, tenant, session)
	}
	if subtle.ConstantTimeCompare([]byte(sess.token), []byte(token)) != 1 {
		s.meter.Counter("heimdall_service_auth_failures_total", telemetry.L("tenant", tenant)).Inc()
		return nil, fmt.Errorf("%w: %s/%s", ErrBadToken, tenant, session)
	}
	return sess, nil
}

// Attach re-validates a (session, token) pair — how a technician's
// client resumes an existing session — and returns its current state.
func (s *Service) Attach(tenant, session, token string) (Info, error) {
	sess, err := s.lookup(tenant, session, token)
	if err != nil {
		return Info{}, err
	}
	sess.mu.Lock()
	info := sess.infoLocked()
	// Ended sessions have released their twin; attach still reports the
	// state, just without a presentation slice.
	if sess.eng != nil {
		info.Slice = sess.eng.Twin.VisibleDevices()
	}
	sess.mu.Unlock()
	return info, nil
}

// Sessions lists the tenant's sessions sorted by ID (tokens withheld).
func (s *Service) Sessions(tenant string) ([]Info, error) {
	t, err := s.reg.get(tenant)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	sessions := make([]*Session, 0, len(t.sessions))
	for _, sess := range t.sessions {
		sessions = append(sessions, sess)
	}
	t.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].ID < sessions[j].ID })
	out := make([]Info, len(sessions))
	for i, sess := range sessions {
		out[i] = sess.snapshotInfo()
	}
	return out, nil
}

// checkLive enforces lifecycle under sess.mu: closed and expired
// sessions deny everything, and a session idle past the timeout expires
// lazily right here (the sweeper just makes reclamation prompt).
func (s *Service) checkLive(sess *Session, now time.Time) error {
	switch sess.state {
	case SessionClosed:
		return fmt.Errorf("%w: %s/%s", ErrSessionClosed, sess.tenant.ID, sess.ID)
	case SessionExpired:
		return fmt.Errorf("%w: %s/%s", ErrSessionExpired, sess.tenant.ID, sess.ID)
	}
	if now.Sub(sess.lastActive) > s.idle {
		s.expireLocked(sess, now)
		return fmt.Errorf("%w: %s/%s", ErrSessionExpired, sess.tenant.ID, sess.ID)
	}
	return nil
}

// expireLocked transitions an active session to expired (caller holds
// sess.mu) and lands the KindSession audit record.
func (s *Service) expireLocked(sess *Session, now time.Time) {
	sess.state = SessionExpired
	sess.endedAt = now
	t := sess.tenant
	t.sys.Enforcer.Trail().Append(sess.TicketID, sess.Technician, audit.KindSession,
		fmt.Sprintf("session %s expired (idle %s)", sess.ID, now.Sub(sess.lastActive).Round(time.Second)), false)
	s.meter.Counter("heimdall_service_sessions_expired_total", telemetry.L("tenant", t.ID)).Inc()
	s.sessionsActive(t).Add(-1)
	releaseLocked(sess)
}

// releaseLocked drops the session's engagement (a full twin copy of the
// tenant network) and console cache once the session can no longer run
// commands, so ended sessions cost a map entry, not a network copy.
func releaseLocked(sess *Session) {
	sess.eng = nil
	sess.consoles = nil
}

// Exec runs one mediated command in the session's twin. Denied commands
// return twin.ErrDenied (HTTP 403); expired/closed sessions are refused
// and audited.
func (s *Service) Exec(tenant, session, token, device, line string) (string, error) {
	sess, err := s.lookup(tenant, session, token)
	if err != nil {
		return "", err
	}
	now := s.clock()
	sess.mu.Lock()
	if err := s.checkLive(sess, now); err != nil {
		trail := sess.tenant.sys.Enforcer.Trail()
		trail.Append(sess.TicketID, sess.Technician, audit.KindSession,
			fmt.Sprintf("deny exec on %s: session %s %s", device, sess.ID, sess.state), false)
		sess.mu.Unlock()
		return "", err
	}
	sess.lastActive = now
	sess.commands++
	con, ok := sess.consoles[device]
	if !ok {
		con, err = sess.eng.Console(device)
		if err != nil {
			sess.mu.Unlock()
			return "", err
		}
		sess.consoles[device] = con
	}
	sess.mu.Unlock()

	start := time.Now()
	out, err := con.Exec(line)
	s.meter.Histogram("heimdall_service_mediation_seconds", telemetry.LatencyBuckets,
		telemetry.L("tenant", tenant)).ObserveDuration(time.Since(start))
	s.meter.Counter("heimdall_service_commands_total", telemetry.L("tenant", tenant)).Inc()
	if err != nil {
		var denied *twin.ErrDenied
		if errors.As(err, &denied) {
			s.meter.Counter("heimdall_service_denied_total", telemetry.L("tenant", tenant)).Inc()
		}
		return "", err
	}
	return out, nil
}

// PrivilegeInfo is the API view of a session's Privilegemsp.
type PrivilegeInfo struct {
	Ticket     string   `json:"ticket"`
	Technician string   `json:"technician"`
	Rules      []string `json:"rules"`
	Slice      []string `json:"slice"`
}

// Privileges reports the session's privilege specification and
// presentation slice — what the technician may do and see.
func (s *Service) Privileges(tenant, session, token string) (PrivilegeInfo, error) {
	sess, err := s.lookup(tenant, session, token)
	if err != nil {
		return PrivilegeInfo{}, err
	}
	eng, err := s.touch(sess)
	if err != nil {
		return PrivilegeInfo{}, err
	}
	spec := eng.Spec
	info := PrivilegeInfo{
		Ticket:     spec.Ticket,
		Technician: spec.Technician,
		Slice:      eng.Twin.VisibleDevices(),
	}
	for _, r := range spec.Rules {
		info.Rules = append(info.Rules, r.String())
	}
	return info, nil
}

// ReviewResult is the API view of an enforcer decision.
type ReviewResult struct {
	Accepted   bool     `json:"accepted"`
	Reason     string   `json:"reason"`
	Checked    int      `json:"checked"`
	Changes    int      `json:"changes"`
	Violations []string `json:"violations,omitempty"`
	Committed  bool     `json:"committed"`
	Ticket     string   `json:"ticket,omitempty"`
	Status     string   `json:"status,omitempty"`
}

// reviewOutcome is the shared result of one pooled review execution.
type reviewOutcome struct {
	res ReviewResult
	err error
	hit bool
}

// Review runs the enforcer's verification of the session's current twin
// changes through the bounded pool, without touching production.
// Overload returns ErrQueueFull.
//
// Reviews are content-coalesced: concurrent submissions whose pending
// change set, privilege rules and production snapshot are identical
// (sessions replaying the same scripted ticket) share one queue slot and
// one verification, and repeated submissions of an already-verified set
// are answered from the enforcer's verdict cache. Either way the result
// is byte-identical to a fresh review.
func (s *Service) Review(tenant, session, token string) (ReviewResult, error) {
	sess, err := s.lookup(tenant, session, token)
	if err != nil {
		return ReviewResult{}, err
	}
	eng, err := s.touch(sess)
	if err != nil {
		return ReviewResult{}, err
	}
	key, ok := eng.ReviewKey()
	if !ok {
		// Empty change set: take a plain (uncoalesced) slot so the
		// "nothing to review" error surfaces exactly as before.
		var out reviewOutcome
		if err := s.pool.Do(tenant, func() { out = s.reviewOnPool(eng) }); err != nil {
			return ReviewResult{}, err
		}
		return out.res, out.err
	}
	shared, coalesced, err := s.pool.DoShared(tenant, key, func() any { return s.reviewOnPool(eng) })
	if err != nil {
		return ReviewResult{}, err
	}
	out := shared.(reviewOutcome)
	if coalesced {
		s.reviewCoalesced.Add(1)
		s.meter.Counter("heimdall_service_review_coalesced_total").Inc()
	} else if out.hit {
		s.reviewCacheHits.Add(1)
		s.meter.Counter("heimdall_service_review_cache_hits_total").Inc()
	}
	return out.res, out.err
}

// reviewOnPool is the body of one pooled review execution.
func (s *Service) reviewOnPool(eng *core.Engagement) reviewOutcome {
	d, hit, err := eng.ReviewCached()
	if err != nil {
		return reviewOutcome{err: err}
	}
	return reviewOutcome{res: decisionResult(d), hit: hit}
}

// ReviewStats reports how many reviews were served from the verdict
// cache and how many coalesced onto an in-flight execution since the
// service started (the load generator's cache-effectiveness headline).
func (s *Service) ReviewStats() (cacheHits, coalesced int64) {
	return s.reviewCacheHits.Load(), s.reviewCoalesced.Load()
}

// Commit pushes the session's twin changes through the enforcer into the
// tenant's production network, via the bounded pool.
func (s *Service) Commit(tenant, session, token string) (ReviewResult, error) {
	sess, err := s.lookup(tenant, session, token)
	if err != nil {
		return ReviewResult{}, err
	}
	eng, err := s.touch(sess)
	if err != nil {
		return ReviewResult{}, err
	}
	var res ReviewResult
	var inner error
	err = s.pool.Do(tenant, func() {
		d, cerr := eng.Commit()
		if d != nil {
			res = decisionResult(d)
		}
		inner = cerr
	})
	if err != nil {
		return ReviewResult{}, err
	}
	if inner == nil {
		res.Committed = true
		s.meter.Counter("heimdall_service_commits_total", telemetry.L("tenant", tenant)).Inc()
	}
	res.Ticket = sess.TicketID
	if tk := sess.tenant.sys.Tickets.Get(sess.TicketID); tk != nil {
		res.Status = tk.Status.String()
	}
	return res, inner
}

func decisionResult(d *enforcer.Decision) ReviewResult {
	res := ReviewResult{Accepted: d.Accepted, Reason: d.Reason(), Checked: d.Checked}
	for _, v := range d.Violations {
		res.Violations = append(res.Violations, v.String())
	}
	return res
}

// touch stamps activity on the session (non-Exec API calls keep a
// session alive too) and hands back its engagement. The returned pointer
// stays valid even if the session expires while the caller still holds
// it — expiry only drops the session's own reference.
func (s *Service) touch(sess *Session) (*core.Engagement, error) {
	now := s.clock()
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if err := s.checkLive(sess, now); err != nil {
		return nil, err
	}
	sess.lastActive = now
	return sess.eng, nil
}

// CloseSession ends a session explicitly. Closing twice fails with
// ErrSessionClosed.
func (s *Service) CloseSession(tenant, session, token string) error {
	sess, err := s.lookup(tenant, session, token)
	if err != nil {
		return err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	switch sess.state {
	case SessionClosed:
		return fmt.Errorf("%w: %s/%s", ErrSessionClosed, tenant, session)
	case SessionExpired:
		// Closing an expired session is a no-op state-wise but allowed:
		// the gauge was already decremented (and the twin released) at
		// expiry.
		sess.state = SessionClosed
		return nil
	}
	sess.state = SessionClosed
	sess.endedAt = s.clock()
	t := sess.tenant
	t.sys.Enforcer.Trail().Append(sess.TicketID, sess.Technician, audit.KindSession,
		fmt.Sprintf("session %s closed (%d commands)", sess.ID, sess.commands), true)
	s.sessionsActive(t).Add(-1)
	releaseLocked(sess)
	return nil
}

// SweepIdle expires every active session idle past the timeout and
// returns how many it reclaimed. Sessions that ended (closed or expired)
// more than one idle period ago are dropped from the tenant's session
// map entirely: their state stays queryable for that grace window, then
// the registry forgets them so a long-running daemon's session maps
// don't grow without bound as sessions churn. heimdalld runs this on a
// timer; tests drive it with a VirtualClock.
func (s *Service) SweepIdle() int {
	now := s.clock()
	n := 0
	for _, t := range s.reg.all() {
		t.mu.Lock()
		sessions := make([]*Session, 0, len(t.sessions))
		for _, sess := range t.sessions {
			sessions = append(sessions, sess)
		}
		t.mu.Unlock()
		var reap []string
		for _, sess := range sessions {
			sess.mu.Lock()
			if sess.state == SessionActive && now.Sub(sess.lastActive) > s.idle {
				s.expireLocked(sess, now)
				n++
			} else if sess.state != SessionActive && now.Sub(sess.endedAt) > s.idle {
				reap = append(reap, sess.ID)
			}
			sess.mu.Unlock()
		}
		if len(reap) > 0 {
			t.mu.Lock()
			for _, id := range reap {
				delete(t.sessions, id)
			}
			t.mu.Unlock()
		}
	}
	return n
}
