package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"heimdall/internal/telemetry"
	"heimdall/internal/ticket"
	"heimdall/internal/twin"
)

// TokenHeader carries the session attach token on authenticated calls.
const TokenHeader = "X-Heimdall-Token"

// Handler returns the service's HTTP JSON API (stdlib only):
//
//	POST   /v1/tenants                                     {"id","scenario"}
//	GET    /v1/tenants
//	GET    /v1/tenants/{t}
//	POST   /v1/tenants/{t}/tickets                         {"summary","srcHost",...}
//	GET    /v1/tenants/{t}/tickets
//	POST   /v1/tenants/{t}/issues/{issue}                  inject scripted issue + file ticket
//	POST   /v1/tenants/{t}/sessions                        {"technician","ticket"}
//	GET    /v1/tenants/{t}/sessions
//	GET    /v1/tenants/{t}/sessions/{s}                    attach (token header)
//	POST   /v1/tenants/{t}/sessions/{s}/exec               {"device","line"} (token header)
//	GET    /v1/tenants/{t}/sessions/{s}/privileges         (token header)
//	POST   /v1/tenants/{t}/sessions/{s}/review             (token header)
//	POST   /v1/tenants/{t}/sessions/{s}/commit             (token header)
//	DELETE /v1/tenants/{t}/sessions/{s}                    close (token header)
//	GET    /metrics                                        Prometheus exposition
//	GET    /healthz
//
// Errors map onto statuses: unknown tenant/session/ticket 404, duplicate
// tenant 409, token mismatch 403, reference-monitor denial 403, expired
// session 410, closed session 409, verify-queue overload 429.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ID       string `json:"id"`
			Scenario string `json:"scenario"`
		}
		if !decode(w, r, &req) {
			return
		}
		info, err := s.CreateTenant(req.ID, req.Scenario)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})

	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Tenants())
	})

	mux.HandleFunc("GET /v1/tenants/{tenant}", func(w http.ResponseWriter, r *http.Request) {
		t, err := s.Tenant(r.PathValue("tenant"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, s.tenantInfo(t))
	})

	mux.HandleFunc("POST /v1/tenants/{tenant}/tickets", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Summary  string   `json:"summary"`
			SrcHost  string   `json:"srcHost"`
			DstHost  string   `json:"dstHost"`
			Suspects []string `json:"suspects"`
			Reporter string   `json:"reporter"`
		}
		if !decode(w, r, &req) {
			return
		}
		tk, err := s.CreateTicket(r.PathValue("tenant"), ticket.Ticket{
			Summary: req.Summary, SrcHost: req.SrcHost, DstHost: req.DstHost,
			Suspects: req.Suspects, CreatedBy: req.Reporter,
		})
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, tk)
	})

	mux.HandleFunc("GET /v1/tenants/{tenant}/tickets", func(w http.ResponseWriter, r *http.Request) {
		tks, err := s.Tickets(r.PathValue("tenant"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, tks)
	})

	mux.HandleFunc("POST /v1/tenants/{tenant}/issues/{issue}", func(w http.ResponseWriter, r *http.Request) {
		tk, err := s.InjectIssue(r.PathValue("tenant"), r.PathValue("issue"), "api")
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, tk)
	})

	mux.HandleFunc("POST /v1/tenants/{tenant}/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Technician string `json:"technician"`
			Ticket     string `json:"ticket"`
		}
		if !decode(w, r, &req) {
			return
		}
		info, err := s.CreateSession(r.PathValue("tenant"), req.Technician, req.Ticket)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})

	mux.HandleFunc("GET /v1/tenants/{tenant}/sessions", func(w http.ResponseWriter, r *http.Request) {
		infos, err := s.Sessions(r.PathValue("tenant"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, infos)
	})

	mux.HandleFunc("GET /v1/tenants/{tenant}/sessions/{session}", func(w http.ResponseWriter, r *http.Request) {
		info, err := s.Attach(r.PathValue("tenant"), r.PathValue("session"), r.Header.Get(TokenHeader))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	mux.HandleFunc("POST /v1/tenants/{tenant}/sessions/{session}/exec", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Device string `json:"device"`
			Line   string `json:"line"`
		}
		if !decode(w, r, &req) {
			return
		}
		out, err := s.Exec(r.PathValue("tenant"), r.PathValue("session"),
			r.Header.Get(TokenHeader), req.Device, req.Line)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"output": out})
	})

	mux.HandleFunc("GET /v1/tenants/{tenant}/sessions/{session}/privileges", func(w http.ResponseWriter, r *http.Request) {
		info, err := s.Privileges(r.PathValue("tenant"), r.PathValue("session"), r.Header.Get(TokenHeader))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	mux.HandleFunc("POST /v1/tenants/{tenant}/sessions/{session}/review", func(w http.ResponseWriter, r *http.Request) {
		res, err := s.Review(r.PathValue("tenant"), r.PathValue("session"), r.Header.Get(TokenHeader))
		writeDecision(w, res, err)
	})

	mux.HandleFunc("POST /v1/tenants/{tenant}/sessions/{session}/commit", func(w http.ResponseWriter, r *http.Request) {
		res, err := s.Commit(r.PathValue("tenant"), r.PathValue("session"), r.Header.Get(TokenHeader))
		writeDecision(w, res, err)
	})

	mux.HandleFunc("DELETE /v1/tenants/{tenant}/sessions/{session}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.CloseSession(r.PathValue("tenant"), r.PathValue("session"), r.Header.Get(TokenHeader)); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"state": "closed"})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		exp, ok := s.meter.(telemetry.Exposer)
		if !ok {
			http.Error(w, "no metrics registry configured", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_, _ = fmt.Fprint(w, exp.Dump())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":  "ok",
			"tenants": s.reg.count(),
		})
	})

	return mux
}

// writeDecision renders a Review/Commit outcome. A rejected change set is
// a successful API call (200 with accepted=false), not a transport error;
// only infrastructure failures (overload, auth, lifecycle) use error
// statuses.
func writeDecision(w http.ResponseWriter, res ReviewResult, err error) {
	if err != nil && res.Reason == "" {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var denied *twin.ErrDenied
	switch {
	case errors.Is(err, ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrBadToken), errors.As(err, &denied):
		status = http.StatusForbidden
	case errors.Is(err, ErrNoTenant), errors.Is(err, ErrNoSession), errors.Is(err, ErrNoScenario):
		status = http.StatusNotFound
	case errors.Is(err, ErrTenantExists), errors.Is(err, ErrSessionClosed):
		status = http.StatusConflict
	case errors.Is(err, ErrSessionExpired):
		status = http.StatusGone
	case errors.Is(err, ErrPoolClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
