// Command perf-monitoring demonstrates the MSP's performance-management
// service class (paper §2.1) under least privilege: a bandwidth report
// over the enterprise network detects an outage, a monitoring ticket is
// filed, and the technician investigates with a strictly read-only
// Privilegemsp — every write attempt bounces off the reference monitor.
//
//	go run ./examples/perf-monitoring
package main

import (
	"fmt"
	"log"
	"strings"

	"heimdall"
)

func main() {
	log.SetFlags(0)

	scen := heimdall.EnterpriseScenario()
	demands := heimdall.UniformTrafficMatrix(scen.Network, 2026, 40, 5, 50)

	fmt.Println("== baseline bandwidth report ==")
	baseline := heimdall.EvaluateTraffic(scen.Snapshot(), demands)
	fmt.Println(baseline)

	// A link fails overnight.
	scen.Network.Device("r3").Interface("Gi0/3").Shutdown = true
	fmt.Println("\n== report after silent link failure ==")
	after := heimdall.EvaluateTraffic(scen.Snapshot(), demands)
	fmt.Println(after)
	if len(after.Undelivered) == 0 {
		log.Fatal("expected losses after the failure")
	}

	// Monitoring alarms file a ticket; the technician gets READ-ONLY
	// privileges (TaskMonitoring grants no config.* actions at all).
	sys, err := heimdall.NewSystem(heimdall.Options{
		Network: scen.Network, Policies: scen.Policies, Sensitive: scen.Sensitive,
	})
	if err != nil {
		log.Fatal(err)
	}
	loss := after.Undelivered[0]
	tk := sys.Tickets.Create(heimdall.Ticket{
		Summary: fmt.Sprintf("bandwidth report shows loss %s -> %s", loss.Src, loss.Dst),
		Kind:    heimdall.TaskMonitoring,
		SrcHost: loss.Src, DstHost: loss.Dst, Proto: loss.Proto, DstPort: loss.Port,
		CreatedBy: "monitoring-system",
	})
	eng, err := sys.StartWork(tk.ID, "noc-analyst")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nticket %s: read-only twin with %d visible devices\n",
		tk.ID, len(eng.Twin.VisibleDevices()))

	for _, dev := range eng.Twin.VisibleDevices() {
		sess, err := eng.Console(dev)
		if err != nil {
			continue
		}
		if out, err := sess.Exec("show interfaces"); err == nil {
			for _, line := range strings.Split(out, "\n") {
				if strings.Contains(line, "administratively down") {
					fmt.Printf("twin %s> found: %s\n", dev, line)
				}
			}
		}
	}

	// Any repair attempt is denied: monitoring privileges cannot write.
	if sess, err := eng.Console("r3"); err == nil {
		if _, err := sess.Exec("interface Gi0/3 no shutdown"); err != nil {
			fmt.Printf("reference monitor: %v\n", err)
			fmt.Println("-> analyst escalates to an interface ticket instead of fixing silently")
		} else {
			log.Fatal("BUG: monitoring ticket allowed a write")
		}
	}
}
