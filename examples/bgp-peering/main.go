// Command bgp-peering runs an ISP-class ticket end to end on an eBGP
// peering: the ISP migrated to a new AS number, the enterprise edge still
// peers with the old one, and external connectivity is down. The
// technician diagnoses the idle session in the twin and fixes the neighbor
// statement; the enforcer imports the verified change.
//
//	go run ./examples/bgp-peering
package main

import (
	"fmt"
	"log"
	"net/netip"

	"heimdall"
)

func main() {
	log.SetFlags(0)

	prod := buildPeering()
	// The incident: the edge still expects the ISP's old AS (65010), but
	// the ISP now runs 65011 — the session never re-establishes.
	prod.Device("edge").BGP.SetNeighbor(netip.MustParseAddr("203.0.113.2"), 65010)
	prod.Device("isp").BGP.LocalAS = 65011
	fmt.Println("incident: ISP migrated to AS 65011; edge still peers with 65010")

	policies := []heimdall.Policy{
		{ID: "P001", Kind: heimdall.Reachability, Src: "h1", Dst: "ext-www", Proto: heimdall.TCP, DstPort: 443},
	}
	sys, err := heimdall.NewSystem(heimdall.Options{Network: prod, Policies: policies})
	if err != nil {
		log.Fatal(err)
	}
	tk := sys.Tickets.Create(heimdall.Ticket{
		Summary: "external web unreachable after ISP maintenance window",
		Kind:    heimdall.TaskISP,
		SrcHost: "h1", DstHost: "ext-www",
		Proto: heimdall.TCP, DstPort: 443,
		Suspects:  []string{"edge"},
		CreatedBy: "netadmin",
	})
	eng, err := sys.StartWork(tk.ID, "dana")
	if err != nil {
		log.Fatal(err)
	}

	edge, err := eng.Console("edge")
	if err != nil {
		log.Fatal(err)
	}
	out, _ := edge.Exec("show ip bgp")
	fmt.Printf("twin> edge: show ip bgp ->\n%s\n\n", out)

	// The fix: re-point the neighbor at the ISP's new AS.
	if _, err := edge.Exec("router bgp 65001 neighbor 203.0.113.2 remote-as 65011"); err != nil {
		log.Fatal(err)
	}
	out, _ = edge.Exec("show ip bgp")
	fmt.Printf("twin> edge: show ip bgp (after fix) ->\n%s\n\n", out)

	if ok, _ := eng.SymptomResolved(); !ok {
		log.Fatal("twin still shows the symptom")
	}
	decision, err := eng.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enforcer: %s; ticket -> %s\n", decision.Reason(), sys.Tickets.Get(tk.ID).Status)

	tr := heimdall.ComputeSnapshot(prod).TraceFrom("h1", heimdall.Flow{
		Proto: heimdall.TCP, Src: netip.MustParseAddr("10.1.0.10"),
		Dst: netip.MustParseAddr("198.51.100.10"), DstPort: 443, SrcPort: 40000,
	})
	fmt.Printf("production: %s\n", tr)
}

// buildPeering assembles h1 - edge(AS 65001) === isp - ext-www.
func buildPeering() *heimdall.Network {
	n := heimdall.NewNetwork("peering")
	edge := n.AddDevice("edge", heimdall.Router)
	isp := n.AddDevice("isp", heimdall.Router)
	h1 := n.AddDevice("h1", heimdall.Host)
	ext := n.AddDevice("ext-www", heimdall.Host)
	must(n.Connect("h1", "eth0", "edge", "Gi0/0"))
	must(n.Connect("edge", "Gi0/1", "isp", "Gi0/0"))
	must(n.Connect("isp", "Gi0/1", "ext-www", "eth0"))

	h1.Interface("eth0").Addr = netip.MustParsePrefix("10.1.0.10/24")
	h1.DefaultGateway = netip.MustParseAddr("10.1.0.1")
	edge.Interface("Gi0/0").Addr = netip.MustParsePrefix("10.1.0.1/24")
	edge.Interface("Gi0/1").Addr = netip.MustParsePrefix("203.0.113.1/30")
	isp.Interface("Gi0/0").Addr = netip.MustParsePrefix("203.0.113.2/30")
	isp.Interface("Gi0/1").Addr = netip.MustParsePrefix("198.51.100.1/24")
	ext.Interface("eth0").Addr = netip.MustParsePrefix("198.51.100.10/24")
	ext.DefaultGateway = netip.MustParseAddr("198.51.100.1")

	edge.BGP = &heimdall.BGPProcess{LocalAS: 65001,
		Networks: []netip.Prefix{netip.MustParsePrefix("10.1.0.0/24")}}
	edge.BGP.SetNeighbor(netip.MustParseAddr("203.0.113.2"), 65010)
	isp.BGP = &heimdall.BGPProcess{LocalAS: 65010,
		Networks: []netip.Prefix{netip.MustParsePrefix("198.51.100.0/24")}}
	isp.BGP.SetNeighbor(netip.MustParseAddr("203.0.113.1"), 65001)
	return n
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
