// Command emergency-fix demonstrates the paper's §7 emergency mode: for an
// incident the twin cannot usefully reproduce (here: the customer wants the
// outage gone *now*), the admin explicitly authorizes the reference monitor
// to bypass the twin. Commands still pass the Privilegemsp check and every
// write is shadow-verified against the network policies before touching
// production — and a malicious write is refused even mid-emergency.
//
//	go run ./examples/emergency-fix
package main

import (
	"fmt"
	"log"

	"heimdall"
)

func main() {
	log.SetFlags(0)

	scen := heimdall.EnterpriseScenario()
	issue := scen.Issues[1] // ospf: branch office offline
	if err := issue.Fault.Inject(scen.Network); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incident: %s\n", issue.Fault.Description)

	sys, err := heimdall.NewSystem(heimdall.Options{
		Network: scen.Network, Policies: scen.Policies, Sensitive: scen.Sensitive,
	})
	if err != nil {
		log.Fatal(err)
	}
	tk := sys.Tickets.Create(heimdall.Ticket{
		Summary: "branch office offline — business impact, fix NOW",
		Kind:    heimdall.TaskOSPF,
		SrcHost: issue.SrcHost, DstHost: issue.DstHost, Proto: issue.Proto,
		Suspects:  []string{issue.Fault.RootCause},
		CreatedBy: "netadmin",
	})
	eng, err := sys.StartWork(tk.ID, "oncall")
	if err != nil {
		log.Fatal(err)
	}

	// The admin explicitly authorizes emergency mode (audited).
	eng.EnableEmergency("netadmin")
	sess, err := eng.EmergencyConsole(issue.Fault.RootCause)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EMERGENCY console on %s (admin-approved, fully audited)\n", sess.Device())

	out, _ := sess.Exec("show ip ospf neighbor")
	fmt.Printf("prod> show ip ospf neighbor ->\n%s\n", out)

	// Privileges still apply: an OSPF ticket cannot touch ACLs.
	if _, err := sess.Exec("access-list EVIL 10 permit ip any any"); err != nil {
		fmt.Printf("still least-privilege: %v\n", err)
	} else {
		log.Fatal("BUG: out-of-task write accepted in emergency mode")
	}

	// The real fix goes straight to production after shadow verification.
	for _, cmd := range issue.Fault.Fix {
		if _, err := sess.Exec(cmd.Line); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("prod> %s (shadow-verified, applied)\n", cmd.Line)
	}
	tr := heimdall.ComputeSnapshot(sys.Production())
	res, err := tr.Reach(issue.SrcHost, issue.DstHost, issue.Proto, issue.DstPort)
	if err != nil || !res.Delivered() {
		log.Fatalf("production not repaired: %v %v", res, err)
	}
	fmt.Printf("production repaired: %s\n", res)

	// The audit report flags the episode as an emergency.
	for _, rep := range heimdall.SummarizeAuditTrail(sys.Enforcer.Trail().Entries()) {
		fmt.Printf("\naudit review:\n%s\n", rep)
		if !rep.Emergency {
			log.Fatal("BUG: emergency episode not flagged")
		}
	}
}
