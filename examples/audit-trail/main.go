// Command audit-trail demonstrates Heimdall's trust machinery: remote
// attestation of the enclave-hosted policy enforcer, the tamper-evident
// audit chain every technician action lands on, and detection of a
// post-hoc tampering attempt on an exported trail.
//
//	go run ./examples/audit-trail
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"strings"

	"heimdall"
)

func main() {
	log.SetFlags(0)

	scen := heimdall.EnterpriseScenario()
	issue := scen.Issues[2] // isp
	if err := issue.Fault.Inject(scen.Network); err != nil {
		log.Fatal(err)
	}
	sys, err := heimdall.NewSystem(heimdall.Options{
		Network: scen.Network, Policies: scen.Policies, Sensitive: scen.Sensitive,
	})
	if err != nil {
		log.Fatal(err)
	}

	// ── Attestation: the customer verifies WHO is enforcing. ───────────
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		log.Fatal(err)
	}
	report, err := sys.Attest(nonce)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attested enforcer measurement: %s...\n", report.Measurement[:16])

	// ── Work a ticket; everything is audited. ──────────────────────────
	tk := sys.Tickets.Create(heimdall.Ticket{
		Summary: issue.Fault.Description, Kind: heimdall.TaskISP,
		SrcHost: issue.SrcHost, DstHost: issue.DstHost,
		Proto: issue.Proto, DstPort: issue.DstPort,
		Suspects: []string{"r3"}, CreatedBy: "netadmin",
	})
	eng, err := sys.StartWork(tk.ID, "alice")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.RunScript(issue.Script); err != nil {
		log.Fatal(err)
	}
	// One denied probe, for the record.
	if sess, err := eng.Console("r3"); err == nil {
		_, _ = sess.Exec("access-list X 10 permit ip any any") // denied: ISP ticket
	}
	if _, err := eng.Commit(); err != nil {
		log.Fatal(err)
	}

	trail := sys.Enforcer.Trail()
	fmt.Printf("\naudit trail (%d entries):\n", trail.Len())
	for _, e := range trail.Entries() {
		verdict := "ALLOW"
		if !e.Allowed {
			verdict = "DENY "
		}
		fmt.Printf("  #%02d %-10s %s %s\n", e.Index, e.Kind, verdict, e.Detail)
	}
	if err := trail.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nchain verification: OK")

	// ── Tampering attempt on the exported trail. ────────────────────────
	export, err := trail.Export()
	if err != nil {
		log.Fatal(err)
	}
	doctored := strings.Replace(string(export), "alice", "nobody", 1)
	fmt.Println("\nattacker rewrites the technician name in the exported log...")
	if _, err := importTrail(sys, []byte(doctored)); err != nil {
		fmt.Printf("tamper detected on import: %v\n", err)
	} else {
		log.Fatal("BUG: doctored trail accepted")
	}
}

// importTrail re-imports an exported trail under the enforcer's key by
// appending a marker entry and verifying; the audit package's Import is
// exercised directly in its tests — here we just re-verify the bytes by
// parsing through the public API.
func importTrail(sys *heimdall.System, data []byte) (*heimdall.AuditTrail, error) {
	// The customer's auditor holds the trail key material via the secure
	// channel established at attestation; the demo reuses the enforcer's.
	return heimdall.ImportAuditTrail(sys.Enforcer.TrailKey(), data)
}
