// Command ospf-troubleshoot reproduces the paper's OSPF issue ("I can't
// ping the other router using OSPF") on the enterprise network: a
// passive-interface statement silently kills an adjacency and strands a
// branch. It also demonstrates safe privilege escalation: the technician
// first suspects an ACL, requests ACL privileges, and the admin approves.
//
//	go run ./examples/ospf-troubleshoot
package main

import (
	"fmt"
	"log"
	"strings"

	"heimdall"
)

func main() {
	log.SetFlags(0)

	scen := heimdall.EnterpriseScenario()
	issue := scen.Issues[1] // ospf
	prod := scen.Network
	if err := issue.Fault.Inject(prod); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected fault: %s\n", issue.Fault.Description)

	sys, err := heimdall.NewSystem(heimdall.Options{
		Network: prod, Policies: scen.Policies, Sensitive: scen.Sensitive,
	})
	if err != nil {
		log.Fatal(err)
	}
	tk := sys.Tickets.Create(heimdall.Ticket{
		Summary: fmt.Sprintf("%s cannot ping %s", issue.SrcHost, issue.DstHost),
		Kind:    heimdall.TaskOSPF,
		SrcHost: issue.SrcHost, DstHost: issue.DstHost, Proto: issue.Proto,
		Suspects:  []string{"r7"},
		CreatedBy: "netadmin",
	})
	eng, err := sys.StartWork(tk.ID, "bob")
	if err != nil {
		log.Fatal(err)
	}

	// Diagnosis: neighbors are missing on r7.
	r7, err := eng.Console("r7")
	if err != nil {
		log.Fatal(err)
	}
	out, _ := r7.Exec("show ip ospf neighbor")
	fmt.Printf("twin> r7: show ip ospf neighbor ->\n%s\n", out)

	// Mid-task escalation: the technician wants to rule out ACLs.
	esc := eng.RequestEscalation(heimdall.PrivilegeRule{
		Effect: heimdall.Allow, Action: "config.acl.*", Resource: "device:r7",
	}, "adjacency missing; want to rule out an ACL blocking OSPF hellos")
	fmt.Printf("escalation requested: %s (%s)\n", esc.Rule, esc.Justification)
	if err := eng.ApproveEscalation(esc); err != nil {
		log.Fatal(err)
	}
	fmt.Println("escalation approved by admin (audited)")

	// Root cause found: a passive-interface statement.
	out, _ = r7.Exec("show running-config")
	fmt.Printf("twin> r7: running-config contains the culprit:\n%s\n", grep(out, "passive-interface"))

	if _, err := r7.Exec("router ospf no passive-interface Gi0/0"); err != nil {
		log.Fatal(err)
	}
	out, _ = r7.Exec("show ip ospf neighbor")
	fmt.Printf("twin> r7: show ip ospf neighbor (after fix) ->\n%s\n", out)

	if ok, _ := eng.SymptomResolved(); !ok {
		log.Fatal("twin still shows the symptom")
	}
	decision, err := eng.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enforcer: %s; ticket %s -> %s\n",
		decision.Reason(), tk.ID, sys.Tickets.Get(tk.ID).Status)
}

func grep(s, needle string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, needle) {
			out = append(out, line)
		}
	}
	if len(out) == 0 {
		return "(no match)"
	}
	return strings.Join(out, "\n")
}
