// Command quickstart walks through the complete Heimdall workflow on a
// small network: a misconfigured ACL blocks a web server; a technician
// diagnoses and fixes it inside a twin network, and the policy enforcer
// imports the verified change into production.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/netip"

	"heimdall"
)

func main() {
	log.SetFlags(0)

	// ── Build a production network: h1 - r1 - h2 (a web server). ──────
	prod := heimdall.NewNetwork("acme-corp")
	r1 := prod.AddDevice("r1", heimdall.Router)
	h1 := prod.AddDevice("h1", heimdall.Host)
	web := prod.AddDevice("web", heimdall.Host)
	must(prod.Connect("h1", "eth0", "r1", "Gi0/0"))
	must(prod.Connect("r1", "Gi0/1", "web", "eth0"))

	h1.Interface("eth0").Addr = netip.MustParsePrefix("10.1.0.10/24")
	h1.DefaultGateway = netip.MustParseAddr("10.1.0.1")
	r1.Interface("Gi0/0").Addr = netip.MustParsePrefix("10.1.0.1/24")
	r1.Interface("Gi0/1").Addr = netip.MustParsePrefix("10.2.0.1/24")
	web.Interface("eth0").Addr = netip.MustParsePrefix("10.2.0.10/24")
	web.DefaultGateway = netip.MustParseAddr("10.2.0.1")

	// The misconfiguration: an edge ACL denies tcp/80 to the web server.
	edge := r1.ACL("EDGE", true)
	edge.InsertEntry(heimdall.ACLEntry{Seq: 10, Action: heimdall.ACLDeny, Proto: heimdall.TCP,
		Dst: netip.MustParsePrefix("10.2.0.10/32"), DstPort: 80})
	edge.InsertEntry(heimdall.ACLEntry{Seq: 20, Action: heimdall.ACLPermit})
	r1.Interface("Gi0/0").ACLIn = "EDGE"

	// ── Stand up Heimdall around it. ───────────────────────────────────
	// Mining policies from a network that is already broken would pin the
	// breakage as intended behaviour, so state the intended policies
	// explicitly here.
	policies := []heimdall.Policy{
		{ID: "P001", Kind: heimdall.Reachability, Src: "h1", Dst: "web", Proto: heimdall.TCP, DstPort: 80},
		{ID: "P002", Kind: heimdall.Reachability, Src: "h1", Dst: "web", Proto: heimdall.ICMP},
	}
	sys, err := heimdall.NewSystem(heimdall.Options{Network: prod, Policies: policies})
	if err != nil {
		log.Fatal(err)
	}

	// ── Step 0: the admin files a ticket. ──────────────────────────────
	tk := sys.Tickets.Create(heimdall.Ticket{
		Summary:   "web service on 'web' cannot receive packets",
		Kind:      heimdall.TaskACL,
		SrcHost:   "h1",
		DstHost:   "web",
		Proto:     heimdall.TCP,
		DstPort:   80,
		CreatedBy: "netadmin",
	})
	fmt.Printf("ticket filed: %s %q\n", tk.ID, tk.Summary)

	// ── Steps 1+2: privileges are generated, the twin comes up. ────────
	eng, err := sys.StartWork(tk.ID, "alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("twin ready; visible devices: %v\n", eng.Twin.VisibleDevices())
	fmt.Printf("generated Privilegemsp:\n%s", eng.Spec)

	// The technician reproduces and diagnoses the issue in the twin.
	h1c, err := eng.Console("h1")
	if err != nil {
		log.Fatal(err)
	}
	out, _ := h1c.Exec("ping web tcp 80")
	fmt.Printf("twin> h1: ping web tcp 80 -> %s\n", out)

	r1c, err := eng.Console("r1")
	if err != nil {
		log.Fatal(err)
	}
	out, _ = r1c.Exec("show access-lists EDGE")
	fmt.Printf("twin> r1: show access-lists EDGE ->\n%s\n", out)

	// The fix: remove the offending deny.
	if _, err := r1c.Exec("no access-list EDGE 10"); err != nil {
		log.Fatal(err)
	}
	out, _ = h1c.Exec("ping web tcp 80")
	fmt.Printf("twin> h1: ping web tcp 80 -> %s\n", out)

	// ── Step 3: the enforcer verifies and imports the change. ──────────
	decision, err := eng.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enforcer: %s (%d policies checked)\n", decision.Reason(), decision.Checked)

	tr := heimdall.ComputeSnapshot(prod).TraceFrom("h1", heimdall.Flow{
		Proto:   heimdall.TCP,
		Src:     netip.MustParseAddr("10.1.0.10"),
		Dst:     netip.MustParseAddr("10.2.0.10"),
		DstPort: 80, SrcPort: 40000,
	})
	fmt.Printf("production: %s\n", tr)

	// The audit trail documents everything and is tamper-evident.
	trail := sys.Enforcer.Trail()
	if err := trail.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit trail: %d entries, chain verified\n", trail.Len())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
