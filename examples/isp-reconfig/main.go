// Command isp-reconfig reproduces the paper's ISP reconfiguration issue
// (a bad static route breaks external connectivity) — and then replays the
// paper's §4.3 threat: a technician whose legitimate fix hides a malicious
// rule opening a path to the sensitive finance server. The policy enforcer
// accepts the honest commit and rejects the malicious one, leaving
// production untouched.
//
//	go run ./examples/isp-reconfig
package main

import (
	"fmt"
	"log"

	"heimdall"
)

func main() {
	log.SetFlags(0)

	fmt.Println("=== Run 1: honest technician ===")
	runHonest()
	fmt.Println()
	fmt.Println("=== Run 2: malicious technician ===")
	runMalicious()
}

func setup() (*heimdall.System, heimdall.Scenario, *heimdall.Ticket) {
	scen := heimdall.EnterpriseScenario()
	issue := scen.Issues[2] // isp
	if err := issue.Fault.Inject(scen.Network); err != nil {
		log.Fatal(err)
	}
	sys, err := heimdall.NewSystem(heimdall.Options{
		Network: scen.Network, Policies: scen.Policies, Sensitive: scen.Sensitive,
	})
	if err != nil {
		log.Fatal(err)
	}
	tk := sys.Tickets.Create(heimdall.Ticket{
		Summary: issue.Fault.Description,
		Kind:    heimdall.TaskISP,
		SrcHost: issue.SrcHost, DstHost: issue.DstHost,
		Proto: issue.Proto, DstPort: issue.DstPort,
		Suspects:  []string{"r3", "r5"},
		CreatedBy: "netadmin",
	})
	return sys, *scen, tk
}

func runHonest() {
	sys, scen, tk := setup()
	issue := scen.Issues[2]
	eng, err := sys.StartWork(tk.ID, "alice")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.RunScript(issue.Script); err != nil {
		log.Fatal(err)
	}
	decision, err := eng.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("honest fix: %s, %d policies checked; ticket -> %s\n",
		decision.Reason(), decision.Checked, sys.Tickets.Get(tk.ID).Status)
}

func runMalicious() {
	sys, scen, tk := setup()
	issue := scen.Issues[2]
	eng, err := sys.StartWork(tk.ID, "mallory")
	if err != nil {
		log.Fatal(err)
	}
	// An over-broad grant from a careless admin: ACL changes on the core
	// router r2 (which guards the finance server), well beyond what an
	// ISP-reconfiguration ticket needs.
	eng.Spec.Rules = append(eng.Spec.Rules,
		heimdall.PrivilegeRule{Effect: heimdall.Allow, Action: "config.acl.*", Resource: "device:r2"},
		heimdall.PrivilegeRule{Effect: heimdall.Allow, Action: "show.*", Resource: "device:r2"},
	)
	eng.Slice["r2"] = true

	// The legitimate fix...
	if _, err := eng.RunScript(issue.Script); err != nil {
		log.Fatal(err)
	}
	// ...plus a stealthy permit that opens every host's path to the
	// finance server — the paper's Figure 6 scenario. The command itself
	// looks exactly like the legitimate ACL edits of a normal fix.
	r2, err := eng.Console("r2")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := r2.Exec("access-list FINANCE-GUARD 15 permit ip any 10.9.0.0 0.0.0.255"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mallory slipped a permit-to-finance entry into FINANCE-GUARD on r2")

	decision, err := eng.Commit()
	if err == nil {
		log.Fatal("BUG: malicious commit was accepted")
	}
	fmt.Printf("enforcer rejected the commit: %v\n", err)
	for _, v := range decision.Violations {
		fmt.Printf("  violation: %s\n", v.Policy)
	}
	// Production is untouched: the honest part of the fix was withheld
	// too (all-or-nothing change sets).
	for _, e := range sys.Production().Device("r2").ACLs["FINANCE-GUARD"].Entries {
		if e.Seq == 15 {
			log.Fatal("malicious entry reached production")
		}
	}
	fmt.Printf("production unchanged; ticket -> %s\n", sys.Tickets.Get(tk.ID).Status)
}
