// Command vlan-troubleshoot reproduces the paper's VLAN issue on the
// enterprise evaluation network: an access port lands in the wrong VLAN
// (the classic StackExchange "access port config" ticket), stranding a
// host. The technician resolves it inside the twin while the reference
// monitor blocks everything a VLAN ticket does not justify.
//
//	go run ./examples/vlan-troubleshoot
package main

import (
	"errors"
	"fmt"
	"log"

	"heimdall"
)

func main() {
	log.SetFlags(0)

	scen := heimdall.EnterpriseScenario()
	issue := scen.Issues[0] // vlan
	prod := scen.Network

	// Break production.
	if err := issue.Fault.Inject(prod); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected fault: %s\n", issue.Fault.Description)

	sys, err := heimdall.NewSystem(heimdall.Options{
		Network:   prod,
		Policies:  scen.Policies,
		Sensitive: scen.Sensitive,
	})
	if err != nil {
		log.Fatal(err)
	}

	tk := sys.Tickets.Create(heimdall.Ticket{
		Summary:   fmt.Sprintf("%s cannot reach %s", issue.SrcHost, issue.DstHost),
		Kind:      heimdall.TaskVLAN,
		SrcHost:   issue.SrcHost,
		DstHost:   issue.DstHost,
		Proto:     issue.Proto,
		CreatedBy: "netadmin",
	})
	eng, err := sys.StartWork(tk.ID, "alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slice (%d of %d devices visible): %v\n",
		len(eng.Twin.VisibleDevices()), len(prod.Devices), eng.Twin.VisibleDevices())

	// The finance server's router is NOT part of a VLAN ticket's world.
	if _, err := eng.Console("h9"); err != nil {
		fmt.Printf("console h9 (finance): correctly refused: %v\n", err)
	}

	// A VLAN ticket grants no ACL privileges, even inside the slice.
	sw2, err := eng.Console("sw2")
	if err != nil {
		log.Fatal(err)
	}
	_, err = sw2.Exec("access-list EVIL 10 permit ip any any")
	var denied *heimdall.ErrDenied
	if errors.As(err, &denied) {
		fmt.Printf("reference monitor: blocked %s on %s\n", denied.Action, denied.Resource)
	}

	// Run the prepared diagnosis + fix script.
	outputs, err := eng.RunScript(issue.Script)
	if err != nil {
		log.Fatal(err)
	}
	for i, cmd := range issue.Script {
		first := outputs[i]
		if idx := len(first); idx > 60 {
			first = first[:60] + "..."
		}
		fmt.Printf("twin> %-4s %-45q %s\n", cmd.Device+":", cmd.Line, firstLine(first))
	}

	if ok, _ := eng.SymptomResolved(); !ok {
		log.Fatal("twin still shows the symptom")
	}
	decision, err := eng.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enforcer: %s; production fixed, ticket %s -> %s\n",
		decision.Reason(), tk.ID, sys.Tickets.Get(tk.ID).Status)
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
