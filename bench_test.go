// Benchmarks regenerating every table and figure of the paper's evaluation
// plus ablations of the design choices called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Figure 9's full mutation search takes ~11 minutes; the benchmark bounds
// it by default. Set HEIMDALL_FULL=1 for the complete search (whose
// results are recorded in EXPERIMENTS.md).
package heimdall

import (
	"net/netip"
	"os"
	"runtime"
	"testing"

	"heimdall/internal/attacksurface"
	"heimdall/internal/console"
	"heimdall/internal/core"
	"heimdall/internal/dataplane"
	"heimdall/internal/experiments"
	"heimdall/internal/latency"
	"heimdall/internal/netmodel"
	"heimdall/internal/privilege"
	"heimdall/internal/scenarios"
	"heimdall/internal/telemetry"
	"heimdall/internal/ticket"
	"heimdall/internal/twin"
	"heimdall/internal/verify"
)

// figure9Budget bounds the university sweep's mutation search: the full
// search takes ~11 minutes (its results are recorded in EXPERIMENTS.md),
// so the benchmark defaults to a bounded search. Set HEIMDALL_FULL=1 to
// run the complete search.
func figure9Budget() int {
	if os.Getenv("HEIMDALL_FULL") != "" {
		return 0
	}
	return 8
}

// BenchmarkTable1 regenerates Table 1 (scenario generation + policy
// mining) and reports the row values as metrics.
func BenchmarkTable1(b *testing.B) {
	var rows []scenarios.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1()
	}
	b.ReportMetric(float64(rows[0].ConfigLines), "enterprise-config-lines")
	b.ReportMetric(float64(rows[1].ConfigLines), "university-config-lines")
	b.ReportMetric(float64(rows[0].Policies), "enterprise-policies")
	b.ReportMetric(float64(rows[1].Policies), "university-policies")
}

// BenchmarkFigure7 runs the pilot study (three issues, both approaches,
// full Heimdall workflow) and reports the modeled overheads.
func BenchmarkFigure7(b *testing.B) {
	model := latency.Default()
	var runs []experiments.Figure7Run
	var err error
	for i := 0; i < b.N; i++ {
		runs, err = experiments.Figure7(model)
		if err != nil {
			b.Fatal(err)
		}
	}
	var total float64
	for _, r := range runs {
		b.ReportMetric(r.Overhead().Seconds(), r.Issue+"-overhead-s")
		total += r.Overhead().Seconds()
	}
	b.ReportMetric(total/float64(len(runs)), "mean-overhead-s")
}

func benchFigure89(b *testing.B, scen *scenarios.Scenario, budget, workers int) {
	var results []*attacksurface.Result
	for i := 0; i < b.N; i++ {
		results = experiments.Figure89(scen, budget, workers)
	}
	for _, r := range results {
		b.ReportMetric(r.Feasibility()*100, r.Technique+"-feasibility-pct")
		b.ReportMetric(r.MeanSurface(), r.Technique+"-surface-pct")
	}
}

// BenchmarkFigure8 runs the enterprise feasibility/attack-surface sweep
// with the full mutation search, serially.
func BenchmarkFigure8(b *testing.B) { benchFigure89(b, scenarios.Enterprise(), 0, 1) }

// BenchmarkFigure9 runs the university sweep serially. The mutation
// search is bounded by default (see figure9Budget); EXPERIMENTS.md
// records the full-search results.
func BenchmarkFigure9(b *testing.B) { benchFigure89(b, scenarios.University(), figure9Budget(), 1) }

// BenchmarkFigure9Parallel is BenchmarkFigure9 with the worker pool at
// GOMAXPROCS — the delta against BenchmarkFigure9 is the parallel
// speedup (results are byte-identical; see TestParallelEquivalence).
func BenchmarkFigure9Parallel(b *testing.B) {
	benchFigure89(b, scenarios.University(), figure9Budget(), runtime.GOMAXPROCS(0))
}

// BenchmarkVerifyCost measures real verification throughput on the
// university policy set — the §4.3 anchor (the paper's prototype needed
// ~25 s for 175 constraints; the simulator's real cost is reported here).
func BenchmarkVerifyCost(b *testing.B) {
	scen := scenarios.University()
	snap := scen.Snapshot()
	b.ResetTimer()
	var res *verify.Result
	for i := 0; i < b.N; i++ {
		res = verify.Check(snap, scen.Policies)
	}
	if !res.OK() {
		b.Fatal("baseline violated")
	}
	b.ReportMetric(float64(res.Checked), "policies")
}

// ── Ablations (DESIGN.md §5) ────────────────────────────────────────────

// BenchmarkSliceStrategies compares the three slice strategies' size and
// computation cost on the enterprise network — the knob behind the
// Figure 8 trade-off.
func BenchmarkSliceStrategies(b *testing.B) {
	scen := scenarios.Enterprise()
	snap := scen.Snapshot()
	for _, strat := range []twin.SliceStrategy{twin.SliceAll, twin.SliceNeighbors, twin.SliceTaskDriven} {
		b.Run(strat.String(), func(b *testing.B) {
			var slice map[string]bool
			for i := 0; i < b.N; i++ {
				slice = twin.ComputeSlice(scen.Network, snap, strat, "h2", "h3", nil)
			}
			b.ReportMetric(float64(len(slice)), "devices")
		})
	}
}

// BenchmarkContinuousVsBatch compares the §4.3 strawman (verify after
// every technician action) against Heimdall's verify-once-at-commit.
func BenchmarkContinuousVsBatch(b *testing.B) {
	scen := scenarios.Enterprise()
	issue := scen.Issues[2] // isp: pure diagnosis+fix script
	build := func() *netmodel.Network {
		n := scen.Network.Clone()
		if err := issue.Fault.Inject(n); err != nil {
			b.Fatal(err)
		}
		return n
	}

	b.Run("continuous", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := build()
			env := console.NewEnv(n)
			checks := 0
			for _, cmd := range issue.Script {
				if _, err := console.New(cmd.Device, env).Run(cmd.Line); err != nil {
					b.Fatal(err)
				}
				verify.Check(dataplane.Compute(n), scen.Policies)
				checks++
			}
			b.ReportMetric(float64(checks), "verifications")
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := build()
			env := console.NewEnv(n)
			for _, cmd := range issue.Script {
				if _, err := console.New(cmd.Device, env).Run(cmd.Line); err != nil {
					b.Fatal(err)
				}
			}
			verify.Check(dataplane.Compute(n), scen.Policies)
			b.ReportMetric(1, "verifications")
		}
	})
}

// BenchmarkLPM compares the FIB's longest-prefix-match trie against a
// linear scan, on the university network's route mix.
func BenchmarkLPM(b *testing.B) {
	scen := scenarios.University()
	snap := scen.Snapshot()
	rib := snap.RIB("r1")
	probes := make([]netip.Addr, 0, 64)
	for i := 0; i < 64; i++ {
		probes = append(probes, netip.AddrFrom4([4]byte{10, byte(i % 18), 0, 10}))
	}

	b.Run("trie", func(b *testing.B) {
		var t dataplane.LPM
		for _, e := range rib {
			t.Insert(e.Prefix, []dataplane.FIBEntry{e})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Lookup(probes[i%len(probes)])
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			addr := probes[i%len(probes)]
			best := -1
			for j := range rib {
				if rib[j].Prefix.Contains(addr) && rib[j].Prefix.Bits() > best {
					best = rib[j].Prefix.Bits()
				}
			}
			_ = best
		}
	})
}

// BenchmarkMonitorOverhead measures the reference monitor's per-command
// cost: a mediated twin session versus a raw console.
func BenchmarkMonitorOverhead(b *testing.B) {
	scen := scenarios.Enterprise()

	b.Run("direct", func(b *testing.B) {
		env := console.NewEnv(scen.Network.Clone())
		con := console.New("r1", env)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := con.Run("show ip route"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mediated", func(b *testing.B) {
		spec := &privilege.Spec{Ticket: "B", Technician: "bench", Rules: []privilege.Rule{
			{Effect: privilege.AllowEffect, Action: "*", Resource: "*"},
		}}
		tw, err := twin.New(twin.Config{
			Ticket: "B", Technician: "bench",
			Production: scen.Network, Spec: spec,
		})
		if err != nil {
			b.Fatal(err)
		}
		sess, err := tw.OpenConsole("r1")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Exec("show ip route"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMonitorOverheadInstrumented is the mediated benchmark with a
// live telemetry registry wired into the twin, so the delta against
// BenchmarkMonitorOverhead/mediated is the full cost of instrumentation
// (counter lookups, histogram observations) on the hot mediation path.
func BenchmarkMonitorOverheadInstrumented(b *testing.B) {
	scen := scenarios.Enterprise()
	spec := &privilege.Spec{Ticket: "B", Technician: "bench", Rules: []privilege.Rule{
		{Effect: privilege.AllowEffect, Action: "*", Resource: "*"},
	}}
	tw, err := twin.New(twin.Config{
		Ticket: "B", Technician: "bench",
		Production: scen.Network, Spec: spec,
		Meter: telemetry.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	sess, err := tw.OpenConsole("r1")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Exec("show ip route"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlowCache measures the snapshot flow cache on the university
// network: "trace" is the uncached per-flow trace cost (TraceFrom, the
// cache's miss path minus map bookkeeping), "memoized" the hit path, and
// "verify-warm" a full 175-policy verification once the cache is warm —
// the cost AffectedBy and repeated Check calls pay per policy after the
// first pass.
func BenchmarkFlowCache(b *testing.B) {
	scen := scenarios.University()
	snap := scen.Snapshot()
	hosts := scen.Network.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]

	b.Run("trace", func(b *testing.B) {
		a1, _ := scen.Network.HostAddr(src)
		a2, _ := scen.Network.HostAddr(dst)
		f := dataplane.Flow{Proto: netmodel.ICMP, Src: a1, Dst: a2}
		for i := 0; i < b.N; i++ {
			snap.TraceFrom(src, f)
		}
	})
	b.Run("memoized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := snap.Reach(src, dst, netmodel.ICMP, 0); err != nil {
				b.Fatal(err)
			}
		}
		hits, misses := snap.FlowCacheStats()
		b.ReportMetric(float64(hits), "hits")
		b.ReportMetric(float64(misses), "misses")
	})
	b.Run("verify-warm", func(b *testing.B) {
		warm := scen.Snapshot()
		verify.Check(warm, scen.Policies)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			verify.Check(warm, scen.Policies)
		}
	})
}

// BenchmarkSnapshotCompute measures dataplane computation on both
// evaluation networks (the twin rebuild cost after each write command).
func BenchmarkSnapshotCompute(b *testing.B) {
	for _, scen := range []*scenarios.Scenario{scenarios.Enterprise(), scenarios.University()} {
		b.Run(scen.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dataplane.Compute(scen.Network)
			}
		})
	}
}

// BenchmarkDerive measures incremental snapshot derivation against a full
// recompute at university scale — the per-trial cost of the mutation
// sweep. "full-compute" is the old path (deep Clone + Compute);
// "derive-static" rebuilds one device's RIB+FIB; "derive-acl" recomputes
// nothing at all; "derive-l2" re-checks adjacency/LSDB but shares every
// table by identity; "derive-l3topo" is the universal single-device
// topology derive with the incremental link-state pass. The acceptance
// bars are derive-static ≥ 10× and derive-l2 ≥ 20× cheaper than
// full-compute; TestDeriveMatchesCompute proves the outputs identical.
func BenchmarkDerive(b *testing.B) {
	scen := scenarios.University()
	base := scen.Network
	snap := dataplane.Compute(base)
	blackhole := netip.MustParseAddr("10.200.0.3")

	b.Run("full-compute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trial := base.Clone()
			trial.Devices["r2"].StaticRoutes = append(trial.Devices["r2"].StaticRoutes,
				netmodel.StaticRoute{Prefix: netip.MustParsePrefix("10.5.0.0/24"), NextHop: blackhole})
			dataplane.Compute(trial)
		}
	})
	b.Run("derive-static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trial := base.CloneCOW("r2")
			trial.Devices["r2"].StaticRoutes = append(trial.Devices["r2"].StaticRoutes,
				netmodel.StaticRoute{Prefix: netip.MustParsePrefix("10.5.0.0/24"), NextHop: blackhole})
			snap.Derive(trial, dataplane.ChangeSet{{Device: "r2", Kind: dataplane.ChangeStatic}})
		}
	})
	b.Run("derive-acl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trial := base.CloneCOW("r2")
			d := trial.Devices["r2"]
			d.ACL(d.ACLNames()[0], true).InsertEntry(netmodel.ACLEntry{
				Seq: 1, Action: netmodel.Deny, Proto: netmodel.AnyProto,
			})
			snap.Derive(trial, dataplane.ChangeSet{{Device: "r2", Kind: dataplane.ChangeACL}})
		}
	})
	b.Run("derive-ospf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trial := base.CloneCOW("r2")
			d := trial.Devices["r2"]
			for _, ifName := range d.InterfaceNames() {
				d.OSPF.Passive[ifName] = true
			}
			snap.Derive(trial, dataplane.ChangeSet{{Device: "r2", Kind: dataplane.ChangeOSPF}})
		}
	})
	b.Run("derive-l2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trial := base.CloneCOW("r2")
			trial.Devices["r2"].VLANs[999] = &netmodel.VLAN{ID: 999, Name: "qa"}
			snap.Derive(trial, dataplane.ChangeSet{{Device: "r2", Kind: dataplane.ChangeL2}})
		}
	})
	b.Run("derive-l3topo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trial := base.CloneCOW("r2")
			for _, ifName := range trial.Devices["r2"].InterfaceNames() {
				itf := trial.Devices["r2"].Interfaces[ifName]
				if itf.Up() && itf.HasAddr() {
					itf.Shutdown = true
					break
				}
			}
			snap.Derive(trial, dataplane.ChangeSet{{Device: "r2", Kind: dataplane.ChangeL3Topology}})
		}
	})
}

// BenchmarkEndToEndWorkflow measures one full ticket lifecycle (system
// construction, twin, mediation, verification, commit) on the enterprise
// network, using the ISP issue.
func BenchmarkEndToEndWorkflow(b *testing.B) {
	scen := scenarios.Enterprise()
	issue := scen.Issues[2]
	for i := 0; i < b.N; i++ {
		prod := scen.Network.Clone()
		if err := issue.Fault.Inject(prod); err != nil {
			b.Fatal(err)
		}
		sys, err := core.NewSystem(core.Options{
			Network: prod, Policies: scen.Policies,
			Sensitive: scen.Sensitive, PlatformSeed: "bench",
		})
		if err != nil {
			b.Fatal(err)
		}
		tk := sys.Tickets.Create(ticket.Ticket{
			Summary: issue.Fault.Description, Kind: issue.Fault.Kind,
			SrcHost: issue.SrcHost, DstHost: issue.DstHost,
			Proto: issue.Proto, DstPort: issue.DstPort,
			Suspects: []string{issue.Fault.RootCause}, CreatedBy: "bench",
		})
		eng, err := sys.StartWork(tk.ID, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.RunScript(issue.Script); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrivilegeGranularity quantifies the value of the fine-grained
// Privilegemsp (DESIGN.md §5): on the same interface-down tickets, compare
// the violation ratio when writes are granted per specific resource
// (Heimdall's template) versus per whole device (a coarse admin habit).
func BenchmarkPrivilegeGranularity(b *testing.B) {
	scen := scenarios.Enterprise()
	cases := attacksurface.InterfaceFaults(scen.Network, nil)[:8]
	fine := &attacksurface.Evaluator{Base: scen.Network, Policies: scen.Policies, Sensitive: scen.Sensitive}

	var fineRes, coarseRes *attacksurface.Result
	for i := 0; i < b.N; i++ {
		fineRes = fine.Evaluate(attacksurface.Heimdall, cases)
		// Coarse baseline: full privileges, but the task-driven slice.
		coarse := attacksurface.Technique{Name: "CoarseGrant",
			Strategy: twin.SliceTaskDriven, FullPrivileges: true}
		coarseRes = fine.Evaluate(coarse, cases)
	}
	b.ReportMetric(fineRes.MeanSurface(), "fine-grained-surface-pct")
	b.ReportMetric(coarseRes.MeanSurface(), "device-level-surface-pct")
}
