// Remote mode: every subcommand here talks to a running heimdalld over
// its HTTP JSON API instead of building an in-process deployment.
// Selected with -server:
//
//	heimdallctl tenants  -server http://127.0.0.1:8787
//	heimdallctl sessions -server http://127.0.0.1:8787 -tenant acme
//	heimdallctl tickets  -server http://127.0.0.1:8787 -tenant acme
//	heimdallctl exec     -server ... -tenant acme -session S-0001 -token <tok> -device r3 -line "show ip route"
//	heimdallctl workflow -server ... -tenant acme -scenario university -issue acl
//	heimdallctl metrics  -server ...
//	heimdallctl pool     -server ...
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"heimdall/internal/service"
	"heimdall/internal/ticket"
)

// remoteClient is a minimal JSON client for the heimdalld API.
type remoteClient struct {
	base string
	http *http.Client
}

func newRemoteClient(server string) *remoteClient {
	return &remoteClient{base: strings.TrimRight(server, "/"), http: http.DefaultClient}
}

// call performs one API request; a non-2xx response becomes an error
// carrying the server's error payload.
func (c *remoteClient) call(method, path, token string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if token != "" {
		req.Header.Set(service.TokenHeader, token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s %s: %s (HTTP %d)", method, path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

func remoteTenants(c *remoteClient) {
	var tenants []service.TenantInfo
	if err := c.call("GET", "/v1/tenants", "", nil, &tenants); err != nil {
		log.Fatal(err)
	}
	if len(tenants) == 0 {
		fmt.Println("no tenants")
		return
	}
	for _, t := range tenants {
		fmt.Printf("%-12s %-12s %3d devices  %3d tickets  %3d sessions\n",
			t.ID, t.Scenario, t.Devices, t.Tickets, t.Sessions)
	}
}

func remoteSessions(c *remoteClient, tenant string) {
	if tenant == "" {
		log.Fatal("sessions needs -tenant")
	}
	var infos []service.Info
	if err := c.call("GET", "/v1/tenants/"+tenant+"/sessions", "", nil, &infos); err != nil {
		log.Fatal(err)
	}
	if len(infos) == 0 {
		fmt.Printf("no sessions under tenant %s\n", tenant)
		return
	}
	for _, s := range infos {
		fmt.Printf("%-8s %-16s %-8s %-8s %4d commands  last active %s\n",
			s.Session, s.Technician, s.Ticket, s.State, s.Commands,
			s.LastActive.Format("15:04:05"))
	}
}

func remoteTickets(c *remoteClient, tenant string) {
	if tenant == "" {
		log.Fatal("tickets needs -tenant")
	}
	var tks []ticket.Ticket
	if err := c.call("GET", "/v1/tenants/"+tenant+"/tickets", "", nil, &tks); err != nil {
		log.Fatal(err)
	}
	if len(tks) == 0 {
		fmt.Printf("no tickets under tenant %s\n", tenant)
		return
	}
	for _, tk := range tks {
		fmt.Printf("%-8s %-12s %s\n", tk.ID, tk.Status, tk.Summary)
	}
}

func remoteExec(c *remoteClient, tenant, session, token, device, line string) {
	if tenant == "" || session == "" || token == "" || device == "" || line == "" {
		log.Fatal("remote exec needs -tenant, -session, -token, -device and -line")
	}
	var out struct {
		Output string `json:"output"`
	}
	err := c.call("POST", "/v1/tenants/"+tenant+"/sessions/"+session+"/exec", token,
		map[string]string{"device": device, "line": line}, &out)
	if err != nil {
		log.Fatal(err)
	}
	if out.Output != "" {
		fmt.Println(out.Output)
	}
}

func (c *remoteClient) fetchMetrics() string {
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET /metrics: HTTP %d: %s", resp.StatusCode, raw)
	}
	return string(raw)
}

func remoteMetrics(c *remoteClient) {
	fmt.Print(c.fetchMetrics())
}

// metricSample is one parsed Prometheus text-format line.
type metricSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseMetrics parses the Prometheus text format far enough for the pool
// view: `name{k="v",...} value` and `name value` lines; comments, HELP/TYPE
// and histogram buckets pass through as ordinary samples the caller
// ignores by name.
func parseMetrics(text string) []metricSample {
	var out []metricSample
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
		if err != nil {
			continue
		}
		s := metricSample{name: line[:sp], value: val, labels: map[string]string{}}
		if br := strings.IndexByte(s.name, '{'); br >= 0 {
			inner := strings.TrimSuffix(s.name[br+1:], "}")
			s.name = s.name[:br]
			for _, kv := range strings.Split(inner, ",") {
				if eq := strings.IndexByte(kv, '='); eq > 0 {
					s.labels[kv[:eq]] = strings.Trim(kv[eq+1:], `"`)
				}
			}
		}
		out = append(out, s)
	}
	return out
}

// remotePool renders the verify pool's health from one /metrics scrape:
// global queue depth and backpressure, the review cache-hit and coalescing
// counters (service-observed and enforcer-observed), and the per-tenant
// queue backlog.
func remotePool(c *remoteClient) {
	samples := parseMetrics(c.fetchMetrics())
	sum := func(name string) float64 {
		total := 0.0
		for _, s := range samples {
			if s.name == name {
				total += s.value
			}
		}
		return total
	}
	fmt.Println("verify pool")
	fmt.Printf("  %-28s %8.0f\n", "queue depth", sum("heimdall_service_queue_depth"))
	fmt.Printf("  %-28s %8.0f\n", "backpressure (total)", sum("heimdall_service_backpressure_total"))
	fmt.Printf("  %-28s %8.0f\n", "review cache hits", sum("heimdall_service_review_cache_hits_total"))
	fmt.Printf("  %-28s %8.0f\n", "reviews coalesced", sum("heimdall_service_review_coalesced_total"))
	hits, misses := sum("heimdall_enforcer_review_cache_hits_total"), sum("heimdall_enforcer_review_cache_misses_total")
	fmt.Printf("  %-28s %8.0f hits / %.0f misses\n", "enforcer review cache", hits, misses)

	backlog := map[string]float64{}
	for _, s := range samples {
		if s.name == "heimdall_service_tenant_queue_depth" {
			backlog[s.labels["tenant"]] += s.value
		}
	}
	if len(backlog) == 0 {
		fmt.Println("per-tenant backlog: none recorded")
		return
	}
	tenants := make([]string, 0, len(backlog))
	for t := range backlog {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	fmt.Println("per-tenant backlog")
	for _, t := range tenants {
		fmt.Printf("  %-28s %8.0f\n", t, backlog[t])
	}
}

// remoteWorkflow drives a full scripted ticket against heimdalld: onboard
// the tenant (reusing it if it already exists), inject the issue, open a
// mediated session, replay the issue's diagnosis+fix script, review and
// commit. The script comes from the client's built-in scenario catalog —
// the server only ever sees mediated console commands.
func remoteWorkflow(c *remoteClient, tenant, scenName, issueName, technician string) {
	if tenant == "" {
		log.Fatal("remote workflow needs -tenant")
	}
	if issueName == "" {
		log.Fatal("workflow needs -issue")
	}
	scen := loadScenario(scenName)
	issue := findIssue(scen, issueName)

	var tinfo service.TenantInfo
	err := c.call("POST", "/v1/tenants", "", map[string]string{"id": tenant, "scenario": scenName}, &tinfo)
	switch {
	case err == nil:
		fmt.Printf("tenant %s onboarded (%s, %d devices)\n", tinfo.ID, tinfo.Scenario, tinfo.Devices)
	case strings.Contains(err.Error(), "already exists"):
		fmt.Printf("tenant %s already onboarded\n", tenant)
	default:
		log.Fatal(err)
	}

	var tk ticket.Ticket
	if err := c.call("POST", "/v1/tenants/"+tenant+"/issues/"+issueName, "", nil, &tk); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault injected: %s; ticket %s filed\n", issue.Fault.Description, tk.ID)

	var info service.Info
	err = c.call("POST", "/v1/tenants/"+tenant+"/sessions", "",
		map[string]string{"technician": technician, "ticket": tk.ID}, &info)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s for %s; twin slice: %v\n", info.Session, info.Technician, info.Slice)

	sessPath := "/v1/tenants/" + tenant + "/sessions/" + info.Session
	for _, cmd := range issue.Script {
		var out struct {
			Output string `json:"output"`
		}
		err := c.call("POST", sessPath+"/exec", info.Token,
			map[string]string{"device": cmd.Device, "line": cmd.Line}, &out)
		if err != nil {
			log.Fatalf("%s on %s: %v", cmd.Line, cmd.Device, err)
		}
		fmt.Printf("twin %s> %s\n", cmd.Device, cmd.Line)
		if out.Output != "" {
			fmt.Println(indent(out.Output))
		}
	}

	var res service.ReviewResult
	if err := c.call("POST", sessPath+"/commit", info.Token, nil, &res); err != nil {
		log.Fatal(err)
	}
	if !res.Committed {
		log.Fatalf("commit refused: %s (violations: %v)", res.Reason, res.Violations)
	}
	fmt.Printf("enforcer: %s (%d policies checked); ticket -> %s\n", res.Reason, res.Checked, res.Status)
	if err := c.call("DELETE", sessPath, info.Token, nil, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s closed\n", info.Session)
}
