// Command heimdallctl drives a Heimdall deployment on one of the built-in
// evaluation networks from the command line:
//
//	heimdallctl topology  -scenario enterprise            # print the network
//	heimdallctl configs   -scenario enterprise -device r3 # print configs
//	heimdallctl policies  -scenario university            # print the policy set
//	heimdallctl workflow  -scenario enterprise -issue vlan # run a full ticket
//	heimdallctl exec      -scenario enterprise -device r1 -line "show ip route"
//	heimdallctl terminal  -scenario enterprise -device r1  # interactive modal shell
//	heimdallctl rmm       -scenario enterprise            # serve the baseline RMM over TCP
//	heimdallctl metrics   -scenario enterprise -issue vlan # workflow + Prometheus dump
//	heimdallctl journal dump -in commit.journal            # inspect a journal export
//	heimdallctl journal diff -a coord.journal -b rep.journal
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"heimdall/internal/console"
	"heimdall/internal/core"
	"heimdall/internal/enforcer"
	"heimdall/internal/faultinject"
	"heimdall/internal/rmm"
	"heimdall/internal/scenarios"
	"heimdall/internal/telemetry"
	"heimdall/internal/ticket"
	"heimdall/internal/verify"
)

// pushFlags tunes the enforcer's production-push pipeline for the
// workflow/metrics subcommands (see docs/ROBUSTNESS.md).
type pushFlags struct {
	retries   int
	backoff   time.Duration
	faultSeed int64
}

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	if cmd == "journal" {
		// journal has its own sub-subcommands and flag shape.
		runJournal(os.Args[2:])
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scenName := fs.String("scenario", "enterprise", "enterprise, university or provider")
	device := fs.String("device", "", "restrict output to one device")
	issueName := fs.String("issue", "", "issue to run (vlan/ospf/isp for enterprise; acl/ospf/isp for university)")
	line := fs.String("line", "", "console command for the exec subcommand")
	addr := fs.String("addr", "127.0.0.1:7777", "listen address for the rmm command")
	server := fs.String("server", "", "heimdalld base URL; switches the subcommand to remote mode")
	tenant := fs.String("tenant", "", "tenant ID for remote subcommands")
	session := fs.String("session", "", "session ID for remote exec")
	token := fs.String("token", "", "session attach token for remote exec")
	technician := fs.String("technician", "operator", "technician name for the remote workflow")
	pushRetries := fs.Int("push-retries", 0, "max attempts per production push (0 = pipeline default)")
	pushBackoff := fs.Duration("push-backoff", 0, "base backoff between push retries (0 = pipeline default)")
	faultSeed := fs.Int64("fault-seed", 0, "inject a seeded fault schedule into the production push (0 = off)")
	exportJournal := fs.String("export-journal", "", "write the commit journal export to this file after a workflow")
	idleTimeout := fs.Duration("idle-timeout", rmm.DefaultIdleTimeout, "idle connection timeout for the rmm command")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	pf := pushFlags{retries: *pushRetries, backoff: *pushBackoff, faultSeed: *faultSeed}

	if *server != "" {
		c := newRemoteClient(*server)
		switch cmd {
		case "tenants":
			remoteTenants(c)
		case "sessions":
			remoteSessions(c, *tenant)
		case "tickets":
			remoteTickets(c, *tenant)
		case "exec":
			remoteExec(c, *tenant, *session, *token, *device, *line)
		case "workflow":
			remoteWorkflow(c, *tenant, *scenName, *issueName, *technician)
		case "metrics":
			remoteMetrics(c)
		case "pool":
			remotePool(c)
		default:
			log.Fatalf("subcommand %q has no remote mode (remote: tenants, sessions, tickets, exec, workflow, metrics, pool)", cmd)
		}
		return
	}
	switch cmd {
	case "tenants", "sessions", "tickets", "pool":
		log.Fatalf("subcommand %q needs -server (it talks to a running heimdalld)", cmd)
	}

	scen := loadScenario(*scenName)
	switch cmd {
	case "topology":
		printTopology(scen)
	case "configs":
		printConfigs(scen, *device)
	case "policies":
		printPolicies(scen)
	case "workflow":
		runWorkflow(scen, *issueName, nil, pf, *exportJournal)
	case "metrics":
		runMetrics(scen, *issueName, pf)
	case "exec":
		runExec(scen, *device, *line)
	case "terminal":
		runTerminal(scen, *device)
	case "rmm":
		serveRMM(scen, *addr, *idleTimeout)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: heimdallctl {topology|configs|policies|workflow|exec|terminal|rmm|metrics} [flags]")
	fmt.Fprintln(os.Stderr, "       heimdallctl journal {dump|verify|diff} [flags]")
	fmt.Fprintln(os.Stderr, "       heimdallctl {tenants|sessions|tickets|exec|workflow|metrics|pool} -server http://host:port [flags]")
	os.Exit(2)
}

// findIssue resolves a named issue in a scenario or exits.
func findIssue(scen *scenarios.Scenario, name string) *scenarios.Issue {
	for i := range scen.Issues {
		if scen.Issues[i].Name == name {
			return &scen.Issues[i]
		}
	}
	log.Fatalf("no issue %q in %s", name, scen.Name)
	return nil
}

func loadScenario(name string) *scenarios.Scenario {
	switch name {
	case "enterprise":
		return scenarios.Enterprise()
	case "university":
		return scenarios.University()
	case "provider":
		return scenarios.Provider()
	}
	log.Fatalf("unknown scenario %q (want enterprise, university or provider)", name)
	return nil
}

func printTopology(scen *scenarios.Scenario) {
	row := scen.Row()
	fmt.Printf("%s: %d routers/switches, %d hosts, %d links, %d policies, %d config lines\n",
		row.Network, row.Routers, row.Hosts, row.Links, row.Policies, row.ConfigLines)
	for _, l := range scen.Network.Links {
		fmt.Printf("  %-22s <-> %s\n", l.A, l.B)
	}
}

func printConfigs(scen *scenarios.Scenario, device string) {
	if device != "" {
		text, ok := scen.Configs[device]
		if !ok {
			log.Fatalf("no device %q", device)
		}
		fmt.Print(text)
		return
	}
	for _, dev := range scen.Network.DeviceNames() {
		fmt.Printf("!===== %s =====\n%s\n", dev, scen.Configs[dev])
	}
}

func printPolicies(scen *scenarios.Scenario) {
	data, err := verify.MarshalPolicies(scen.Policies)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
}

func runWorkflow(scen *scenarios.Scenario, issueName string, meter telemetry.Meter, pf pushFlags, exportJournal string) {
	if issueName == "" {
		log.Fatal("workflow needs -issue")
	}
	issue := findIssue(scen, issueName)
	if err := issue.Fault.Inject(scen.Network); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault injected: %s\n", issue.Fault.Description)

	sys, err := core.NewSystem(core.Options{
		Network: scen.Network, Policies: scen.Policies, Sensitive: scen.Sensitive,
		Meter: meter,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Enforcer.Retry = enforcer.RetryPolicy{MaxAttempts: pf.retries, BaseBackoff: pf.backoff}
	if pf.faultSeed != 0 {
		plan := faultinject.RandomPlan(pf.faultSeed, scen.Network.RoutersAndSwitches(),
			[]string{"apply", "restore"})
		inj := faultinject.New(plan)
		if meter != nil {
			inj.SetMeter(meter)
		}
		sys.Enforcer.SetInjector(inj)
		fmt.Printf("fault injection armed: seed %d, %d rules\n", pf.faultSeed, len(plan.Rules))
	}
	tk := sys.Tickets.Create(ticket.Ticket{
		Summary: issue.Fault.Description, Kind: issue.Fault.Kind,
		SrcHost: issue.SrcHost, DstHost: issue.DstHost,
		Proto: issue.Proto, DstPort: issue.DstPort,
		Suspects: []string{issue.Fault.RootCause}, CreatedBy: "heimdallctl",
	})
	eng, err := sys.StartWork(tk.ID, "operator")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ticket %s assigned; twin slice: %v\n", tk.ID, eng.Twin.VisibleDevices())
	for _, cmd := range issue.Script {
		out, err := func() (string, error) {
			sess, err := eng.Console(cmd.Device)
			if err != nil {
				return "", err
			}
			return sess.Exec(cmd.Line)
		}()
		if err != nil {
			log.Fatalf("%s on %s: %v", cmd.Line, cmd.Device, err)
		}
		fmt.Printf("twin %s> %s\n", cmd.Device, cmd.Line)
		if out != "" {
			fmt.Println(indent(out))
		}
	}
	decision, err := eng.Commit()
	if err != nil {
		// Under an armed fault schedule a failed push is an outcome, not a
		// crash: report what the pipeline did and, if rollback itself was
		// defeated, run recovery.
		if pf.faultSeed != 0 {
			fmt.Printf("commit failed under faults: %v\n", err)
			if q, why := sys.Enforcer.Quarantined(); q {
				fmt.Printf("production quarantined: %s\n", why)
				rep, rerr := sys.Enforcer.Recover(scen.Network)
				if rerr != nil {
					log.Fatalf("recovery: %v", rerr)
				}
				fmt.Printf("recovery: commit %s %s (%d changes)\n", rep.Commit, rep.Action, rep.Changes)
			}
			fmt.Printf("commit journal: %d records\n", sys.Enforcer.Journal().Len())
			return
		}
		log.Fatalf("commit refused: %v", err)
	}
	fmt.Printf("enforcer: %s (%d policies checked); ticket -> %s\n",
		decision.Reason(), decision.Checked, sys.Tickets.Get(tk.ID).Status)
	fmt.Printf("audit trail: %d entries\n", sys.Enforcer.Trail().Len())
	if exportJournal != "" {
		data, err := sys.Enforcer.Journal().Export()
		if err != nil {
			log.Fatalf("journal export: %v", err)
		}
		if err := os.WriteFile(exportJournal, data, 0o600); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("journal exported to %s (verify with: heimdallctl journal verify -in %s -key %x)\n",
			exportJournal, exportJournal, sys.Enforcer.JournalKey())
	}
}

// runMetrics runs the full mediated workflow for an issue (the scenario's
// first issue when -issue is omitted) with a telemetry registry wired
// through the whole mediation path, then prints the Prometheus text dump.
func runMetrics(scen *scenarios.Scenario, issueName string, pf pushFlags) {
	if issueName == "" {
		if len(scen.Issues) == 0 {
			log.Fatalf("scenario %s has no issues", scen.Name)
		}
		issueName = scen.Issues[0].Name
	}
	reg := telemetry.NewRegistry()
	runWorkflow(scen, issueName, reg, pf, "")
	fmt.Println("\n# telemetry after the workflow:")
	fmt.Print(reg.Dump())
}

// runExec runs one console command directly on a scenario device — handy
// for poking at the built-in networks without a ticket.
func runExec(scen *scenarios.Scenario, device, line string) {
	if device == "" || line == "" {
		log.Fatal("exec needs -device and -line")
	}
	if scen.Network.Devices[device] == nil {
		log.Fatalf("no device %q", device)
	}
	out, err := console.New(device, console.NewEnv(scen.Network)).Run(line)
	if err != nil {
		log.Fatal(err)
	}
	if out != "" {
		fmt.Println(out)
	}
}

// runTerminal opens an interactive IOS-style modal shell on a device.
func runTerminal(scen *scenarios.Scenario, device string) {
	if device == "" {
		log.Fatal("terminal needs -device")
	}
	if scen.Network.Devices[device] == nil {
		log.Fatalf("no device %q", device)
	}
	term := console.NewTerminal(console.New(device, console.NewEnv(scen.Network)).Run)
	fmt.Printf("connected to %s; 'configure terminal' for config mode, ctrl-D to quit\n", device)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("%s%s ", device, term.Prompt())
		if !sc.Scan() {
			fmt.Println()
			return
		}
		out, err := term.Input(sc.Text())
		if err != nil {
			fmt.Printf("%% %v\n", err)
			continue
		}
		if out != "" {
			fmt.Println(out)
		}
	}
}

func serveRMM(scen *scenarios.Scenario, addr string, idleTimeout time.Duration) {
	srv := rmm.NewServer(map[string]string{"admin": "admin"}, rmm.NewDirectBackend(scen.Network))
	srv.SetTelemetry(telemetry.NewRegistry())
	srv.SetIdleTimeout(idleTimeout)
	if err := srv.Listen(addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline RMM server (direct access, no mediation) on %s\n", srv.Addr())
	fmt.Println(`login with {"op":"login","user":"admin","token":"admin"}, then {"op":"exec","device":"r1","line":"show ip route"}`)
	fmt.Println(`fetch the Prometheus dump with {"op":"metrics"} once logged in`)
	fmt.Println("press enter to stop")
	_, _ = bufio.NewReader(os.Stdin).ReadString('\n')
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Printf("drain deadline hit, connections force-closed: %v\n", err)
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n")
}
