package main

// The journal subcommand inspects exported commit journals offline — the
// auditor-side counterpart of the enforcer's write-ahead journal:
//
//	heimdallctl journal dump   -in commit.journal [-key HEX]
//	heimdallctl journal verify -in commit.journal -key HEX
//	heimdallctl journal diff   -a coord.journal -b replica.journal [-key HEX]
//
// dump prints the chain human-readably (and authenticates it when the key
// is supplied); verify authenticates the chain and prints its head; diff
// compares two exports record-by-record and reports whether one is a
// prefix of the other (the shape a crash or a lagging replica leaves) or
// where they diverge (the shape a forgery leaves).

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"heimdall/internal/journal"
)

func runJournal(args []string) {
	if len(args) < 1 {
		journalUsage()
	}
	sub := args[0]
	fs := flag.NewFlagSet("journal "+sub, flag.ExitOnError)
	in := fs.String("in", "", "journal export to read")
	fileA := fs.String("a", "", "first journal export (diff)")
	fileB := fs.String("b", "", "second journal export (diff)")
	keyHex := fs.String("key", "", "hex journal HMAC key (from the enclave, released to the auditor)")
	if err := fs.Parse(args[1:]); err != nil {
		os.Exit(2)
	}
	var key []byte
	if *keyHex != "" {
		var err error
		if key, err = hex.DecodeString(*keyHex); err != nil {
			log.Fatalf("bad -key: %v", err)
		}
	}
	switch sub {
	case "dump":
		journalDump(readJournal(*in, "-in"), key)
	case "verify":
		if key == nil {
			log.Fatal("journal verify needs -key")
		}
		records := readJournal(*in, "-in")
		if err := journal.VerifyChain(records, key); err != nil {
			log.Fatalf("FAIL: %v", err)
		}
		h := journal.HeadOf(records)
		fmt.Printf("OK: %d records, head #%d %s\n", len(records), h.Index, short(h.Hash))
	case "diff":
		journalDiff(readJournal(*fileA, "-a"), readJournal(*fileB, "-b"), key)
	default:
		journalUsage()
	}
}

func journalUsage() {
	fmt.Fprintln(os.Stderr, "usage: heimdallctl journal dump   -in FILE [-key HEX]")
	fmt.Fprintln(os.Stderr, "       heimdallctl journal verify -in FILE -key HEX")
	fmt.Fprintln(os.Stderr, "       heimdallctl journal diff   -a FILE -b FILE [-key HEX]")
	os.Exit(2)
}

// readJournal loads an export. Without a key only the JSON shape is
// checked here; authentication happens in the caller when a key is given.
func readJournal(path, flagName string) []journal.Record {
	if path == "" {
		log.Fatalf("journal: missing %s FILE", flagName)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var records []journal.Record
	if err := json.Unmarshal(data, &records); err != nil {
		log.Fatalf("%s: not a journal export: %v", path, err)
	}
	return records
}

func journalDump(records []journal.Record, key []byte) {
	authed := "unauthenticated (no -key)"
	if key != nil {
		if err := journal.VerifyChain(records, key); err != nil {
			log.Fatalf("FAIL: %v", err)
		}
		authed = "chain verified"
	}
	fmt.Printf("%d records, %s\n", len(records), authed)
	for _, r := range records {
		var extra []string
		if len(r.Changes) > 0 {
			extra = append(extra, fmt.Sprintf("%d changes", len(r.Changes)))
		}
		for _, a := range r.Approvals {
			extra = append(extra, fmt.Sprintf("approved by %s/%s", a.Signer, a.Role))
		}
		if r.ChangeIndex >= 0 {
			extra = append(extra, fmt.Sprintf("change %d", r.ChangeIndex))
		}
		if len(r.Restored) > 0 {
			extra = append(extra, fmt.Sprintf("restored %v", r.Restored))
		}
		if len(r.Unrestored) > 0 {
			extra = append(extra, fmt.Sprintf("UNRESTORED %v", r.Unrestored))
		}
		suffix := ""
		if len(extra) > 0 {
			suffix = " (" + strings.Join(extra, ", ") + ")"
		}
		fmt.Printf("#%-3d %-12s %-8s %s%s\n", r.Index, r.Kind, r.Commit, r.Detail, suffix)
	}
	h := journal.HeadOf(records)
	fmt.Printf("head: #%d %s\n", h.Index, short(h.Hash))
}

func journalDiff(a, b []journal.Record, key []byte) {
	if key != nil {
		if err := journal.VerifyChain(a, key); err != nil {
			log.Fatalf("FAIL (-a): %v", err)
		}
		if err := journal.VerifyChain(b, key); err != nil {
			log.Fatalf("FAIL (-b): %v", err)
		}
	}
	d := journal.Diff(a, b)
	fmt.Println(d.String())
	if !d.Equal() {
		os.Exit(1)
	}
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
