// Command experiments regenerates the paper's evaluation artifacts:
//
//	experiments -table1        # Table 1: evaluation networks
//	experiments -fig7          # Figure 7: pilot study timings
//	experiments -fig8          # Figure 8: enterprise trade-off
//	experiments -fig9          # Figure 9: university trade-off
//	experiments -verifycost    # §4.3 verification-cost anchor
//	experiments -chaos N       # N seeded fault schedules vs the pipeline
//	experiments -bench-json P  # write the performance trajectory to P
//	experiments -service-load  # multi-tenant service load generator
//	experiments -scale-tiers   # generated-topology scale tiers only
//	experiments -all           # everything
//
// Use -budget to bound the Figure 8/9 mutation search per sample (0 = the
// full search used for the recorded results) and -workers to parallelize
// the sweep (defaults to GOMAXPROCS; results are identical at any worker
// count). With -telemetry, -fig7 also
// exports the pilot-study runs as span JSONL (one span per modeled
// workflow step, on a deterministic virtual clock) to the -spans file.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"heimdall/internal/experiments"
	"heimdall/internal/latency"
	"heimdall/internal/scenarios"
	"heimdall/internal/service"
)

func main() {
	log.SetFlags(0)
	var (
		table1      = flag.Bool("table1", false, "regenerate Table 1")
		fig7        = flag.Bool("fig7", false, "regenerate Figure 7 (pilot study)")
		fig8        = flag.Bool("fig8", false, "regenerate Figure 8 (enterprise)")
		fig9        = flag.Bool("fig9", false, "regenerate Figure 9 (university)")
		verifyCost  = flag.Bool("verifycost", false, "measure the verification-cost anchor")
		chaos       = flag.Int("chaos", 0, "run N seeded fault schedules against the commit pipeline")
		chaosSeed   = flag.Int64("chaos-seed", 1, "first seed of the -chaos sweep")
		repChaos    = flag.Bool("replica-chaos", false, "run the replication chaos deck against the replicated enforcer")
		all         = flag.Bool("all", false, "run every experiment")
		budget      = flag.Int("budget", 0, "mutation budget per sample for fig8/fig9 (0 = full search)")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers for the fig8/fig9 sweep (1 = serial; results identical)")
		telem       = flag.Bool("telemetry", false, "with -fig7: export pilot-study spans as JSONL")
		spansPath   = flag.String("spans", "fig7_spans.jsonl", "span JSONL output path for -telemetry")
		benchJSON   = flag.String("bench-json", "", "measure the performance trajectory and write it as JSON to the given path")
		svcLoad     = flag.Bool("service-load", false, "run the multi-tenant service load generator")
		svcTenants  = flag.Int("service-tenants", 0, "tenants for -service-load (0 = the 50-tenant acceptance scale)")
		svcPer      = flag.Int("service-sessions", 0, "concurrent sessions per tenant for -service-load (0 = 20)")
		svcQueueP50 = flag.Float64("assert-queue-p50", 0, "with -service-load: exit non-zero when verify-queue wait p50 exceeds this many milliseconds (0 = no assertion)")
		scaleTiers  = flag.Bool("scale-tiers", false, "measure the generated-topology scale tiers (also part of -bench-json)")
	)
	flag.Parse()
	if !(*table1 || *fig7 || *fig8 || *fig9 || *verifyCost || *chaos > 0 || *repChaos || *all || *benchJSON != "" || *svcLoad || *scaleTiers) {
		flag.Usage()
		os.Exit(2)
	}

	model := latency.Default()
	if *all || *table1 {
		timed("table1", func() {
			fmt.Print(experiments.FormatTable1(experiments.Table1()))
		})
	}
	if *all || *fig7 {
		timed("fig7", func() {
			runs, err := experiments.Figure7(model)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatFigure7(runs))
			if *telem {
				// A fixed epoch keeps the virtual-clock spans byte-for-byte
				// reproducible across runs.
				start := time.Date(2021, time.November, 1, 0, 0, 0, 0, time.UTC)
				tr := experiments.TraceFigure7(runs, start)
				f, err := os.Create(*spansPath)
				if err != nil {
					log.Fatal(err)
				}
				if err := tr.ExportJSONL(f); err != nil {
					f.Close()
					log.Fatal(err)
				}
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("wrote %d spans to %s\n", len(tr.Finished()), *spansPath)
			}
		})
	}
	if *all || *fig8 {
		timed("fig8", func() {
			results := experiments.Figure89(scenarios.Enterprise(), *budget, *workers)
			fmt.Print(experiments.FormatFigure89("Figure 8 (enterprise)", results))
		})
	}
	if *all || *fig9 {
		timed("fig9", func() {
			results := experiments.Figure89(scenarios.University(), *budget, *workers)
			fmt.Print(experiments.FormatFigure89("Figure 9 (university)", results))
		})
	}
	if *all || *chaos > 0 {
		count := *chaos
		if count <= 0 {
			count = 60
		}
		timed("chaos", func() {
			s, err := experiments.Chaos(*chaosSeed, count)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatChaos(s))
		})
	}
	if *all || *repChaos {
		timed("replica-chaos", func() {
			s, err := experiments.ReplicaChaos()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatReplicaChaos(s))
		})
	}
	if *all || *svcLoad {
		timed("service-load", func() {
			rep, err := service.RunLoad(service.LoadConfig{
				ServiceConfig:     service.Config{VerifyQueue: 4096},
				Tenants:           *svcTenants,
				SessionsPerTenant: *svcPer,
				Reviews:           true,
				Commits:           true,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(rep.String())
			if *svcQueueP50 > 0 && rep.VerifyQueueP50Ms > *svcQueueP50 {
				log.Fatalf("verify-queue wait p50 %.1fms exceeds the -assert-queue-p50 bound of %.1fms",
					rep.VerifyQueueP50Ms, *svcQueueP50)
			}
		})
	}
	if *scaleTiers {
		timed("scale-tiers", func() {
			fmt.Print(experiments.FormatScaleTiers(experiments.RunScaleTiers()))
		})
	}
	if *benchJSON != "" {
		timed("bench", func() {
			report := experiments.RunBench()
			f, err := os.Create(*benchJSON)
			if err != nil {
				log.Fatal(err)
			}
			if err := report.WriteJSON(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote benchmark trajectory to %s (fig8 serial %.2fs, derive-static %.0fx, derive-l2 %.0fx, spf-memo hit rate %.0f%%, service %.0f cmds/sec p99 %.1fms)\n",
				*benchJSON, report.Figure8SerialSeconds, report.DeriveStaticSpeed,
				report.DeriveL2Speed, 100*report.SPFMemoHitRate,
				report.ServiceCmdsPerSec, report.ServiceP99Ms)
			fmt.Printf("verify queue: wait p50 %.1fms p99 %.1fms, peak depth %d, %d of %d reviews deduped (%d cached + %d coalesced)\n",
				report.ServiceVerifyQueueP50Ms, report.ServiceVerifyQueueP99Ms,
				report.ServicePeakQueueDepth,
				report.ServiceReviewCacheHits+report.ServiceReviewCoalesced,
				report.ServiceReviews, report.ServiceReviewCacheHits, report.ServiceReviewCoalesced)
			if k8, ok := report.ScaleTiers["fattree-k8"]; ok {
				fmt.Printf("fattree-k8: %d devices, compute %.0fms, derive-l3topo %.0fx, bounded sweep %.1fs\n",
					k8.Devices, k8.SnapshotComputeMs, k8.DeriveL3TopoSpeed, k8.SweepBoundedSeconds)
			}
		})
	}
	if *all || *verifyCost {
		timed("verifycost", func() {
			res := experiments.MeasureVerifyCost(model)
			fmt.Printf("verification cost: %d policies in %s real compute (%.2f ms/policy)\n",
				res.Policies, res.Elapsed.Round(time.Microsecond),
				float64(res.PerPolicy.Microseconds())/1000)
			fmt.Printf("modeled wall-clock at paper calibration: %.1fs (paper: ~25s for 175 constraints)\n",
				res.ModeledWall.Seconds())
		})
	}
}

func timed(name string, f func()) {
	start := time.Now()
	f()
	fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
}
