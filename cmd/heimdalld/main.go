// Command heimdalld is the long-running multi-tenant Heimdall service: one
// process hosting many customer networks, each with its own digital twin,
// ticket system, policy enforcer and audit trail, behind a stdlib HTTP
// JSON API (see docs/SERVICE.md for the endpoint reference):
//
//	heimdalld -addr 127.0.0.1:8787 -preload acme=university,globex=enterprise
//
// An idle-session sweeper runs on -sweep-interval; verify/commit load is
// bounded by -verify-workers/-verify-queue with 429 backpressure, and
// /metrics serves the Prometheus exposition for the whole fleet.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"heimdall/internal/service"
	"heimdall/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:8787", "HTTP listen address")
	shards := flag.Int("shards", 8, "tenant registry shard count")
	verifyWorkers := flag.Int("verify-workers", 0, "bounded verify/commit workers (0 = GOMAXPROCS)")
	verifyQueue := flag.Int("verify-queue", 64, "verify queue capacity; overflow returns 429")
	idleTimeout := flag.Duration("idle-timeout", 30*time.Minute, "idle technician sessions expire after this")
	sweepInterval := flag.Duration("sweep-interval", time.Minute, "how often the idle sweeper runs")
	preload := flag.String("preload", "", "comma-separated id=scenario tenants to onboard at startup")
	platformSeed := flag.String("platform-seed", "", "deterministic per-tenant platform seed (tests/CI)")
	flag.Parse()

	reg := telemetry.NewRegistry()
	svc := service.New(service.Config{
		Shards:        *shards,
		VerifyWorkers: *verifyWorkers,
		VerifyQueue:   *verifyQueue,
		IdleTimeout:   *idleTimeout,
		Meter:         reg,
		PlatformSeed:  *platformSeed,
	})
	defer svc.Close()

	if err := preloadTenants(svc, *preload); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Idle-session sweeper.
	go func() {
		tick := time.NewTicker(*sweepInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if n := svc.SweepIdle(); n > 0 {
					log.Printf("sweeper: expired %d idle session(s)", n)
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("heimdalld listening on %s (%d shards, idle timeout %s, sweep every %s)",
		ln.Addr(), svc.Shards(), *idleTimeout, *sweepInterval)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("heimdalld: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("heimdalld: drain deadline hit: %v", err)
	}
}

// preloadTenants onboards "id=scenario" pairs from the -preload flag.
func preloadTenants(svc *service.Service, spec string) error {
	if spec == "" {
		return nil
	}
	for _, pair := range strings.Split(spec, ",") {
		id, scenario, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return fmt.Errorf("bad -preload entry %q (want id=scenario)", pair)
		}
		info, err := svc.CreateTenant(id, scenario)
		if err != nil {
			return fmt.Errorf("preload %s: %w", id, err)
		}
		log.Printf("preloaded tenant %s (%s, %d devices)", info.ID, info.Scenario, info.Devices)
	}
	return nil
}
